"""Structured span tracing across every checking layer.

One :class:`Tracer` records *spans* — named, nested, attributed
intervals (``session → property → engine → compile/unroll/encode/
solve``, portfolio race rounds, cache lookups, parallel chunk
lifecycles) — as in-memory Chrome trace-event dicts.  The design
constraints, in order:

* **Free when off.**  The process-global tracer starts disabled;
  :meth:`Tracer.span` then returns one shared no-op context manager,
  so an instrumentation site costs two attribute loads and a falsy
  check.  Instrumentation sits at *stage* granularity (a compile, an
  unroll, a solver query) — never inside the solver or apply inner
  loops, whose accounting stays in their existing plain-int counters.
* **Multiprocess.**  Spans carry the recording process's real pid, so
  each worker is its own lane in ``chrome://tracing`` / Perfetto.  A
  worker's tracer has its own epoch; :meth:`Tracer.absorb` re-bases
  shipped spans onto the parent timeline using the wall-clock epoch
  difference (see :mod:`repro.parallel`, which ships spans home with
  each worker's result payload).
* **Well-formed by construction.**  Span begin/end come from one
  monotonic clock and are truncated to integer microseconds, so
  durations are never negative and a child's ``[ts, ts+dur]`` interval
  always sits inside its parent's — the schema
  :mod:`repro.obs.validate` re-checks on exported files.

Export targets: :meth:`Tracer.write_chrome` (a ``traceEvents`` JSON
object, loadable by ``chrome://tracing`` and https://ui.perfetto.dev)
and :meth:`Tracer.write_jsonl` (one event object per line, for ad-hoc
``jq``/pandas digestion).  :meth:`Tracer.write` picks by suffix.
"""

from __future__ import annotations

import json
import os
import threading
import time as _time
from typing import Any, Dict, List, Optional, Union

__all__ = ["Span", "Tracer", "tracer", "set_tracer", "use_tracer"]


class _NullSpan:
    """The shared do-nothing span handle returned by a disabled
    tracer.  Stateless, so one instance serves every call site and
    every (re-)entry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, key: str, value: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Span:
    """A live span handle: a context manager that records one complete
    ("ph": "X") trace event on exit.  ``set`` attaches attributes
    (cone fingerprint, engine, verdict, conflicts …) that land in the
    event's ``args``."""

    __slots__ = ("_tracer", "name", "cat", "args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._t0 = 0.0

    def set(self, key: str, value: Any) -> None:
        self.args[key] = value

    def __enter__(self) -> "Span":
        self._t0 = _time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            # An aborted portfolio slice (EngineAborted) or a real
            # failure still records its span, tagged with the cause.
            self.args.setdefault("error", exc_type.__name__)
        self._tracer._record(self.name, self.cat, self._t0,
                             _time.perf_counter(), self.args)


class Tracer:
    """In-memory span recorder with Chrome-trace/JSONL export."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: recorded events, already in Chrome trace-event dict shape
        self.events: List[Dict[str, Any]] = []
        self._epoch_perf = _time.perf_counter()
        #: wall-clock time of the perf epoch — the cross-process
        #: rebasing anchor (see :meth:`absorb`)
        self.epoch_wall = _time.time()
        self._lock = threading.Lock()
        self._tids: Dict[int, int] = {}
        self._names: Dict[int, str] = {}     # pid -> lane label

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, cat: str = "repro",
             **args: Any) -> Union[Span, _NullSpan]:
        """A context manager recording ``name`` as a complete event.
        When the tracer is disabled this is (nearly) free."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, cat, args)

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            tid = self._tids[ident] = len(self._tids)
        return tid

    def _record(self, name: str, cat: str, t0: float, t1: float,
                args: Dict[str, Any]) -> None:
        # Truncation is monotone, so child intervals stay inside their
        # parents' after the float->int microsecond conversion.
        ts = int((t0 - self._epoch_perf) * 1e6)
        end = int((t1 - self._epoch_perf) * 1e6)
        event = {"name": name, "cat": cat, "ph": "X",
                 "ts": max(0, ts), "dur": max(0, end - max(0, ts)),
                 "pid": os.getpid(), "tid": self._tid()}
        if args:
            event["args"] = args
        with self._lock:
            self.events.append(event)

    def add_span(self, name: str, start_perf: float, end_perf: float,
                 cat: str = "repro", **args: Any) -> None:
        """Record a span retroactively from two ``perf_counter``
        readings (e.g. a session's whole lifetime at report time)."""
        if not self.enabled:
            return
        self._record(name, cat, start_perf, end_perf, args)

    def label_process(self, label: str, pid: Optional[int] = None) -> None:
        """Name a pid's lane in the trace viewer ("main", "worker-2")."""
        self._names[pid if pid is not None else os.getpid()] = label

    # ------------------------------------------------------------------
    # Cross-process merging
    # ------------------------------------------------------------------
    def export(self) -> List[Dict[str, Any]]:
        """A snapshot of the recorded events (picklable plain dicts) —
        what a worker ships home with its results."""
        with self._lock:
            return [dict(e) for e in self.events]

    def absorb(self, events: List[Dict[str, Any]],
               epoch_wall: Optional[float] = None,
               label: Optional[str] = None) -> None:
        """Merge spans recorded by another tracer (typically a worker
        process), re-basing their timestamps onto this tracer's
        timeline via the wall-clock difference of the two epochs."""
        if not events:
            return
        offset = 0
        if epoch_wall is not None:
            offset = int((epoch_wall - self.epoch_wall) * 1e6)
        merged = []
        for event in events:
            event = dict(event)
            event["ts"] = max(0, int(event.get("ts", 0)) + offset)
            merged.append(event)
        with self._lock:
            self.events.extend(merged)
        if label and merged:
            self.label_process(label, merged[0].get("pid"))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def chrome_events(self) -> List[Dict[str, Any]]:
        """The event list plus per-process ``process_name`` metadata
        (one lane label per pid seen)."""
        events = self.export()
        pids = {e["pid"] for e in events}
        meta = []
        main_pid = os.getpid()
        for pid in sorted(pids):
            label = self._names.get(
                pid, "main" if pid == main_pid else f"worker-{pid}")
            meta.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"name": label}})
        return meta + events

    def write_chrome(self, path: Union[str, os.PathLike]) -> int:
        """Write a ``chrome://tracing`` / Perfetto-loadable JSON file;
        returns the number of (non-metadata) span events written."""
        events = self.chrome_events()
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        with open(path, "w") as fh:
            json.dump(payload, fh, default=str)
            fh.write("\n")
        return sum(1 for e in events if e.get("ph") == "X")

    def write_jsonl(self, path: Union[str, os.PathLike]) -> int:
        """Write one JSON event object per line; returns the span
        count."""
        events = self.chrome_events()
        with open(path, "w") as fh:
            for event in events:
                fh.write(json.dumps(event, default=str) + "\n")
        return sum(1 for e in events if e.get("ph") == "X")

    def write(self, path: Union[str, os.PathLike]) -> int:
        """Suffix-dispatching export: ``*.jsonl`` writes JSON-lines,
        anything else the Chrome trace-event object."""
        if os.fspath(path).endswith(".jsonl"):
            return self.write_jsonl(path)
        return self.write_chrome(path)

    def __len__(self) -> int:
        return len(self.events)


#: The process-global tracer every instrumentation site consults.
#: Disabled by default: tracing is opt-in (CLI ``--trace``, the
#: examples, or :func:`set_tracer`/:func:`use_tracer` from code).
_TRACER = Tracer(enabled=False)


def tracer() -> Tracer:
    """The active tracer (a disabled no-op recorder by default)."""
    return _TRACER


def set_tracer(new: Tracer) -> Tracer:
    """Install *new* as the process-global tracer; returns the old one
    (worker processes install their own after fork/spawn)."""
    global _TRACER
    old, _TRACER = _TRACER, new
    return old


class use_tracer:
    """Context manager: install a tracer, restore the previous one on
    exit.  ``with use_tracer(Tracer()) as t: ... t.write(path)``."""

    def __init__(self, new: Optional[Tracer] = None):
        self.tracer = new if new is not None else Tracer(enabled=True)
        self._old: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._old = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc) -> None:
        if self._old is not None:
            set_tracer(self._old)
