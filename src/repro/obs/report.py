"""One renderer for every report surface — serial, parallel, cached.

Before this module each result shape carried its own ``summary()``
string and the CLI duplicated the cache line per path, so the serial
and parallel outputs drifted (different fields, different units).
Now there is exactly one line format per concept:

* :func:`render_result` — a per-property line.  Works on any
  engine-report shape (:class:`~repro.ste.STEResult`,
  :class:`~repro.sat.bmc.BMCResult`,
  :class:`~repro.parallel.RemoteResult`,
  :class:`~repro.core.cache.CachedResult`): engine-specific fields
  (``bdd_nodes``, ``cnf_vars``/``conflicts``) appear when the result
  carries them, a ``[cached]`` tag when it was cache-served.
* :func:`render_summary` — the one-line session roll-up
  (``SessionReport.summary()`` delegates here, so the serial and
  multiprocess paths cannot diverge again).
* :func:`render_cache_line` — the CLI's persistent-cache line.
* :func:`timing_table` — the per-property timing breakdown behind the
  CLI's ``--profile``.
* :func:`report_metrics` / :func:`render_metrics` — the unified
  metric namespace derived from a session report: the legacy
  per-component ``stats()`` totals bridged to dotted names
  (``bdd.apply.hits``, ``sat.conflicts``, ``cache.verdict.miss``)
  plus the live-incremented runtime metrics
  (``portfolio.race.aborts``, ``parallel.worker.idle_s``).  Totals
  equal the legacy dicts' by construction — pinned by the test suite.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .metrics import merge_metrics

__all__ = ["render_result", "render_summary", "render_cache_line",
           "render_lint_line", "timing_table", "report_metrics",
           "render_metrics"]


def render_result(result: Any) -> str:
    """The per-property summary line, for any engine-report shape."""
    engine = str(getattr(result, "engine", "?")).upper()
    status = "PASS" if result.passed else \
        f"FAIL({len(result.failures)} points)"
    if getattr(result, "vacuous", False):
        status += " [VACUOUS]"
    parts = [f"{engine} {status}", f"depth={result.depth}",
             f"points={getattr(result, 'checked_points', 0)}"]
    bdd_nodes = getattr(result, "bdd_nodes", None)
    if bdd_nodes is not None:
        parts.append(f"bdd_nodes={bdd_nodes}")
    cnf_stats = getattr(result, "cnf_stats", None)
    if cnf_stats is not None:
        parts.append(f"cnf_vars={cnf_stats.get('variables', 0)}")
        solver_stats = getattr(result, "solver_stats", None) or {}
        parts.append(f"conflicts={solver_stats.get('conflicts', 0)}")
    parts.append(f"time={result.elapsed_seconds:.3f}s")
    if getattr(result, "cached", False):
        parts.append("[cached]")
    return " ".join(parts)


def render_summary(report: Any) -> str:
    """The one-line suite roll-up (``SessionReport.summary()``)."""
    n = len(report.outcomes)
    failed = len(report.failures)
    status = "PASS" if failed == 0 else f"FAIL({failed}/{n})"
    hits = report.bdd_stats.get("cache_hits", 0)
    misses = report.bdd_stats.get("cache_misses", 0)
    total = hits + misses
    rate = (100.0 * hits / total) if total else 0.0
    line = (f"Session[{report.engine}] {status} properties={n} "
            f"models={report.models_compiled}"
            f"(+{report.model_reuses} reused) "
            f"bdd_nodes={report.bdd_stats.get('nodes', 0)} "
            f"cache_hit_rate={rate:.1f}% "
            f"time={report.elapsed_seconds:.3f}s")
    if report.jobs > 1:
        line += f" jobs={report.jobs}"
    if report.cache_hits or report.cache_misses:
        checked = report.cache_hits + report.cache_misses
        line += (f" pcache={report.cache_hits}/{checked} skipped"
                 f"(+{report.cache_stored} stored)")
    if report.engine == "portfolio":
        wins = report.engine_wins
        line += " wins[" + " ".join(
            f"{e}={wins[e]}" for e in sorted(wins)) + "]"
    if report.engine_stats:
        line += (f" sat_conflicts={report.engine_stats.get('conflicts', 0)}"
                 f" sat_vars={report.engine_stats.get('variables', 0)}")
    return line


def render_cache_line(report: Any, cache_dir: str, rerun: str) -> str:
    """The persistent-cache roll-up the CLI prints — identical for the
    serial and multiprocess paths."""
    checked = report.cache_hits + report.cache_misses
    pct = (100.0 * report.cache_hits / checked) if checked else 0.0
    return (f"cache[{rerun}] {cache_dir}: "
            f"{report.cache_hits}/{checked} checks skipped ({pct:.0f}%), "
            f"{report.cache_stored} stored")


def render_lint_line(report: Any, level: str) -> str:
    """The CLI's static-lint roll-up (``python -m repro
    --lint-level``).  Duck-typed on the
    :class:`repro.lint.LintReport` surface so this module stays
    lint-agnostic."""
    errors = len(report.errors)
    warnings = len(report.warnings)
    body = "clean" if not (errors or warnings) else \
        f"{errors} error(s), {warnings} warning(s)"
    return (f"lint[{level}] {report.subject}: {body} "
            f"[{len(report.rules_run)} rules, "
            f"{report.elapsed_seconds:.3f}s]")


def timing_table(report: Any) -> str:
    """Per-property timing breakdown, slowest first: where the suite's
    wall clock went, which engine decided each property, what was
    cache-served.  The CLI prints this under ``--profile``."""
    rows: List[tuple] = []
    for outcome in report.outcomes:
        result = outcome.result
        rows.append((outcome.name, outcome.engine,
                     "cache" if outcome.cached else
                     ("reuse" if outcome.reused_model else "build"),
                     outcome.cone_nodes, result.depth,
                     getattr(result, "checked_points", 0),
                     result.elapsed_seconds))
    rows.sort(key=lambda r: (-r[6], r[0]))
    total = sum(r[6] for r in rows) or 1.0
    width = max([len(r[0]) for r in rows] + [8])
    lines = [f"{'property':<{width}} {'engine':<9} {'model':<5} "
             f"{'cone':>6} {'depth':>5} {'points':>6} "
             f"{'time':>9} {'share':>6}"]
    for name, engine, model, cone, depth, points, secs in rows:
        lines.append(f"{name:<{width}} {engine:<9} {model:<5} "
                     f"{cone:>6} {depth:>5} {points:>6} "
                     f"{secs:>8.3f}s {100.0 * secs / total:>5.1f}%")
    lines.append(f"{'total':<{width}} {'':<9} {'':<5} {'':>6} {'':>5} "
                 f"{'':>6} {total:>8.3f}s {'':>6}")
    return "\n".join(lines)


def report_metrics(report: Any) -> Dict[str, float]:
    """The unified metric namespace for a session report.

    Bridges the legacy per-component ``stats()`` totals the report
    already aggregates (BDD computed tables, SAT solver counters,
    persistent-cache traffic) into dotted names, then merges the
    runtime-incremented metrics the session/workers recorded
    (``report.obs_metrics``).  The bridged totals are *equal to* the
    legacy values — this is a renaming, not a re-count.
    """
    m: Dict[str, float] = {}
    for op, counts in report.cache_stats.items():
        m[f"bdd.{op}.hits"] = counts.get("hits", 0)
        m[f"bdd.{op}.misses"] = counts.get("misses", 0)
        m[f"bdd.{op}.entries"] = counts.get("entries", 0)
    m["bdd.apply.hits"] = report.bdd_stats.get("cache_hits", 0)
    m["bdd.apply.misses"] = report.bdd_stats.get("cache_misses", 0)
    m["bdd.nodes"] = report.bdd_stats.get("nodes", 0)
    m["bdd.vars"] = report.bdd_stats.get("vars", 0)
    for key, value in report.engine_stats.items():
        name = {"frames_computed": "sat.frames.computed",
                "frames_reused": "sat.frames.reused"}.get(
                    key, f"sat.{key}")
        m[name] = value
    m["cache.verdict.hit"] = report.cache_hits
    m["cache.verdict.miss"] = report.cache_misses
    m["cache.verdict.stored"] = report.cache_stored
    m["session.properties"] = len(report.outcomes)
    m["session.failures"] = len(report.failures)
    m["session.models_compiled"] = report.models_compiled
    m["session.model_reuses"] = report.model_reuses
    m["session.elapsed_s"] = round(report.elapsed_seconds, 6)
    m["session.check_s"] = round(report.check_seconds(), 6)
    m["parallel.jobs"] = report.jobs
    for engine, wins in report.engine_wins.items():
        m[f"session.wins.{engine}"] = wins
    merge_metrics(m, report.obs_metrics)
    return m


def render_metrics(metrics: Dict[str, float]) -> str:
    """An aligned, sorted dump of a flattened metric namespace."""
    if not metrics:
        return "(no metrics recorded)"
    width = max(len(name) for name in metrics)
    lines = []
    for name in sorted(metrics):
        value = metrics[name]
        if isinstance(value, float) and not value.is_integer():
            text = f"{value:.6f}".rstrip("0").rstrip(".")
        else:
            text = str(int(value))
        lines.append(f"{name:<{width}}  {text}")
    return "\n".join(lines)
