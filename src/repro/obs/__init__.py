"""repro.obs — observability across every checking layer.

Three surfaces, one package:

* :mod:`repro.obs.trace` — structured span tracing (``session →
  property → engine → compile/unroll/encode/solve``) with Chrome
  trace-event and JSONL export, multiprocess lane merging included.
* :mod:`repro.obs.metrics` — the unified metrics registry and the
  merge/delta algebra that carries counters across worker processes.
* :mod:`repro.obs.report` — the single renderer for every report
  surface (per-property lines, session summary, cache line, the
  ``--profile`` timing table, the ``--metrics`` namespace dump).

Plus :mod:`repro.obs.observer` (the optional per-engine callback
hook) and :mod:`repro.obs.validate` (the exported-trace schema check
CI runs).
"""

from .metrics import (MetricsRegistry, delta_metrics, merge_metrics,
                      stats_delta)
from .observer import NULL_OBSERVER, Observer
from .report import (render_cache_line, render_lint_line,
                     render_metrics, render_result, render_summary,
                     report_metrics, timing_table)
from .trace import Span, Tracer, set_tracer, tracer, use_tracer

__all__ = [
    "Tracer", "Span", "tracer", "set_tracer", "use_tracer",
    "MetricsRegistry", "merge_metrics", "delta_metrics", "stats_delta",
    "Observer", "NULL_OBSERVER",
    "render_result", "render_summary", "render_cache_line",
    "render_lint_line", "timing_table", "report_metrics",
    "render_metrics",
]
