"""Trace-schema validation: is an exported trace file well formed?

Checks what ``chrome://tracing`` / Perfetto silently tolerate but a
broken exporter would betray:

* every span event (``"ph": "X"``) carries ``ts``/``dur``/``name``/
  ``pid``/``tid``;
* no negative timestamps or durations;
* spans on one ``(pid, tid)`` lane are properly nested — any two
  either disjoint or one containing the other, never partially
  overlapping (a rebasing or clock bug shows up here first).

Reads both export formats (the Chrome ``traceEvents`` object and
JSONL).  Usable as a library (:func:`validate_events`) and as the CI
gate::

    python -m repro.obs.validate trace.jsonl

exits 0 on a clean file, 1 with per-problem diagnostics otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Union

__all__ = ["load_events", "validate_events", "validate_file", "main"]

_REQUIRED = ("ts", "dur", "name", "pid", "tid")


def load_events(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """Events from a Chrome trace-event JSON object, a bare JSON
    array, or a JSONL file (dispatch by content, not suffix)."""
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("{") or stripped.startswith("["):
        try:
            payload = json.loads(text)
        except ValueError:
            payload = None
        if isinstance(payload, dict):
            events = payload.get("traceEvents")
            if isinstance(events, list):
                return events
            if "ph" in payload or "name" in payload:
                return [payload]             # a one-line JSONL file
            raise ValueError("trace object has no traceEvents list")
        if isinstance(payload, list):
            return payload
    # JSONL: one event object per line.
    events = []
    for i, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except ValueError as exc:
            raise ValueError(f"line {i + 1}: not JSON ({exc})") from exc
    return events


def validate_events(events: List[Dict[str, Any]]) -> List[str]:
    """Schema problems found in *events* (empty list = valid)."""
    problems: List[str] = []
    spans: List[Dict[str, Any]] = []
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        if event.get("ph") != "X":
            continue                         # metadata etc: fine as-is
        missing = [k for k in _REQUIRED if k not in event]
        if missing:
            problems.append(f"event {i} ({event.get('name', '?')}): "
                            f"missing {', '.join(missing)}")
            continue
        if event["ts"] < 0:
            problems.append(f"event {i} ({event['name']}): "
                            f"negative ts {event['ts']}")
        if event["dur"] < 0:
            problems.append(f"event {i} ({event['name']}): "
                            f"negative dur {event['dur']}")
        spans.append(event)

    # Nesting per (pid, tid) lane: sweep in (ts, -dur) order with a
    # stack of open intervals; a span that starts inside the top but
    # ends after it partially overlaps — the malformation trace
    # viewers render as garbage.
    lanes: Dict[tuple, List[Dict[str, Any]]] = {}
    for event in spans:
        lanes.setdefault((event["pid"], event["tid"]), []).append(event)
    for (pid, tid), lane in sorted(lanes.items()):
        lane.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: List[Dict[str, Any]] = []
        for event in lane:
            end = event["ts"] + event["dur"]
            while stack and stack[-1]["ts"] + stack[-1]["dur"] <= event["ts"]:
                stack.pop()
            if stack:
                parent_end = stack[-1]["ts"] + stack[-1]["dur"]
                if end > parent_end:
                    problems.append(
                        f"lane pid={pid} tid={tid}: span "
                        f"{event['name']!r} [{event['ts']}, {end}] "
                        f"overlaps {stack[-1]['name']!r} ending at "
                        f"{parent_end}")
            stack.append(event)
    return problems


def validate_file(path: Union[str, os.PathLike]
                  ) -> "tuple[int, List[str]]":
    """(span count, problems) for a trace file on disk."""
    events = load_events(path)
    spans = sum(1 for e in events
                if isinstance(e, dict) and e.get("ph") == "X")
    return spans, validate_events(events)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate an exported trace file (Chrome "
                    "trace-event JSON or JSONL): required fields, "
                    "non-negative durations, proper span nesting.")
    parser.add_argument("trace", help="trace file to validate")
    parser.add_argument("--min-spans", type=int, default=1,
                        help="fail unless the file holds at least this "
                             "many span events (default 1)")
    parser.add_argument("--min-lanes", type=int, default=1,
                        help="fail unless spans come from at least this "
                             "many distinct processes (default 1)")
    args = parser.parse_args(argv)
    try:
        events = load_events(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    problems = validate_events(events)
    spans = [e for e in events
             if isinstance(e, dict) and e.get("ph") == "X"]
    lanes = {e.get("pid") for e in spans}
    if len(spans) < args.min_spans:
        problems.append(f"only {len(spans)} span(s), "
                        f"expected >= {args.min_spans}")
    if len(lanes) < args.min_lanes:
        problems.append(f"only {len(lanes)} process lane(s), "
                        f"expected >= {args.min_lanes}")
    for problem in problems:
        print(f"INVALID: {problem}", file=sys.stderr)
    if problems:
        return 1
    names = sorted({e["name"] for e in spans})
    print(f"{args.trace}: {len(spans)} spans across {len(lanes)} "
          f"process lane(s), properly nested; span names: "
          f"{', '.join(names[:12])}{' …' if len(names) > 12 else ''}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
