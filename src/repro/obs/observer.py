"""The engine observer hook — per-check and per-stage callbacks.

:class:`Observer` is the subclass-and-override surface for callers who
want structured notifications instead of (or alongside) the global
tracer: progress bars, per-property logging, external telemetry.  The
default instance is a no-op, and the hook is *optional at every
layer*:

* :class:`~repro.core.session.CheckSession` accepts ``observer=`` and
  calls :meth:`on_check_begin`/:meth:`on_check_end` around every
  property, whatever engine decides it;
* engine adapters that implement ``set_observer`` (the stock
  :class:`~repro.core.engines.STEEngine` /
  :class:`~repro.core.engines.BMCSatEngine` do) additionally report
  per-stage :meth:`on_engine_event` calls.  The session attaches the
  observer with ``getattr``, so a third-party plugin engine that
  predates the hook keeps working unchanged — it simply emits no
  stage events.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Observer", "NULL_OBSERVER"]


class Observer:
    """Base observer: every callback is a no-op.  Subclass and
    override what you care about; exceptions raised by callbacks
    propagate (observers are trusted code, not plugins)."""

    def on_check_begin(self, name: str, engine: str) -> None:
        """A property check is starting under *engine* (the requested
        backend; a portfolio check reports ``"portfolio"`` here and
        the deciding engine in :meth:`on_check_end`)."""

    def on_check_end(self, name: str, engine: str, result: Any,
                     cached: bool) -> None:
        """A property check finished.  *engine* is the backend that
        decided it, *result* the live or cache-served engine report,
        *cached* whether the persistent verdict cache answered."""

    def on_engine_event(self, engine: str, stage: str,
                        seconds: float, **attrs: Any) -> None:
        """A backend finished one internal stage (``"prepare"``,
        ``"solve"``, …) in *seconds*; *attrs* carry engine-specific
        counters (conflicts, checked points …)."""


#: The shared do-nothing observer (sessions default to it).
NULL_OBSERVER = Observer()
