"""The unified metrics registry: counters, gauges, histograms under
one dotted namespace.

Every layer of the checker already counts — the BDD manager's
computed-table hits, the CDCL solver's conflicts, the verdict cache's
misses, the work queue's idle waits — but each behind its own
``stats()`` dict with its own key names.  This module is the one
namespace they meet in (``bdd.apply.hits``, ``sat.conflicts``,
``cache.verdict.miss``, ``parallel.worker.idle_s``,
``portfolio.race.aborts``) and the merge/delta algebra that makes the
numbers survive multiprocess fan-out.

Two increment disciplines coexist deliberately:

* **Hot loops keep their plain-int counters.**  The solver bumps
  ``self.conflicts += 1`` millions of times; no registry indirection
  belongs there.  Those totals are *bridged* into the namespace once
  per report (:func:`repro.obs.report.report_metrics`), via the
  components' cumulative ``stats()``/``snapshot()``/``delta()``
  surfaces.
* **Stage-granular events increment a registry directly.**  A race
  abort, a worker's idle wait, a chunk completion — a few dozen per
  suite — go through :meth:`MetricsRegistry.inc`/``observe`` (one
  dict update under a lock, safe from racing engine threads).

The flattened ``as_dict`` form is plain ``{name: number}`` so it
pickles across workers; :func:`merge_metrics` (sum, with min/max
suffix rules) and :func:`delta_metrics` (counter subtraction) are the
aggregation the parallel layer applies to it.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Mapping, Optional, Tuple

__all__ = ["MetricsRegistry", "merge_metrics", "delta_metrics",
           "stats_delta"]

Number = float


class MetricsRegistry:
    """Counters (monotone sums), gauges (last-set values) and
    histograms (count/sum/min/max) under dotted metric names."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, Number] = {}
        self._hists: Dict[str, Tuple[int, float, float, float]] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: Number = 1) -> None:
        """Add *amount* to counter *name* (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: Number) -> None:
        """Set gauge *name* to *value* (point-in-time, last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: Number) -> None:
        """Record one observation into histogram *name*."""
        with self._lock:
            slot = self._hists.get(name)
            if slot is None:
                self._hists[name] = (1, value, value, value)
            else:
                count, total, lo, hi = slot
                self._hists[name] = (count + 1, total + value,
                                     min(lo, value), max(hi, value))

    def update_from(self, stats: Mapping[str, Number], *,
                    prefix: str = "") -> None:
        """Bulk-add a component ``stats()`` dict as counters, optionally
        namespaced by *prefix* (``prefix="sat."`` turns ``conflicts``
        into ``sat.conflicts``)."""
        for key, value in stats.items():
            self.inc(prefix + key, value)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Number]:
        """Flattened snapshot: counters and gauges by name, histograms
        as ``name.count/.sum/.min/.max`` — picklable plain data."""
        with self._lock:
            out: Dict[str, Number] = dict(self._counters)
            out.update(self._gauges)
            for name, (count, total, lo, hi) in self._hists.items():
                out[f"{name}.count"] = count
                out[f"{name}.sum"] = total
                out[f"{name}.min"] = lo
                out[f"{name}.max"] = hi
        return out

    def merge_dict(self, other: Mapping[str, Number]) -> None:
        """Fold a flattened snapshot (e.g. a worker's) into this
        registry's counters, with the min/max suffix rules of
        :func:`merge_metrics`."""
        for name, value in other.items():
            if name.endswith(".min"):
                with self._lock:
                    cur = self._counters.get(name)
                    self._counters[name] = (value if cur is None
                                            else min(cur, value))
            elif name.endswith(".max"):
                with self._lock:
                    cur = self._counters.get(name, value)
                    self._counters[name] = max(cur, value)
            else:
                self.inc(name, value)

    def __len__(self) -> int:
        with self._lock:
            return (len(self._counters) + len(self._gauges)
                    + len(self._hists))


# ----------------------------------------------------------------------
# The flat-dict algebra used across process boundaries
# ----------------------------------------------------------------------
def merge_metrics(into: Dict[str, Number],
                  other: Mapping[str, Number]) -> Dict[str, Number]:
    """Accumulate *other* into *into* in place (and return it):
    ``.min``-suffixed keys take the minimum, ``.max`` the maximum,
    everything else sums — the worker-report aggregation rule."""
    for name, value in other.items():
        if name.endswith(".min"):
            cur = into.get(name)
            into[name] = value if cur is None else min(cur, value)
        elif name.endswith(".max"):
            into[name] = max(into.get(name, value), value)
        else:
            into[name] = into.get(name, 0) + value
    return into


def delta_metrics(end: Mapping[str, Number],
                  base: Optional[Mapping[str, Number]]
                  ) -> Dict[str, Number]:
    """*end* minus *base* for counter-like keys; ``.min``/``.max``
    keys keep their end values (extrema cannot be subtracted).  Used
    by fork-COW workers whose registries inherit the parent's counts."""
    if not base:
        return dict(end)
    out: Dict[str, Number] = {}
    for name, value in end.items():
        if name.endswith(".min") or name.endswith(".max"):
            out[name] = value
        else:
            out[name] = value - base.get(name, 0)
    return out


def stats_delta(now: Mapping[str, int], base: Mapping[str, int], *,
                gauges: Iterable[str] = ()) -> Dict[str, int]:
    """Component-stats delta: counters subtract, *gauges* (absolute
    sizes like ``variables``/``clauses``, and running maxima) keep
    their current values.  The shared rule behind every component's
    ``delta()`` method."""
    gauges = frozenset(gauges)
    return {key: (value if key in gauges else value - base.get(key, 0))
            for key, value in now.items()}
