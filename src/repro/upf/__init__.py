"""Minimal UPF (Unified Power Format) subset: parse, write, audit."""

from .apply import AuditResult, audit, intent_for_core
from .format import (IsolationStrategy, PowerDomain, PowerIntent,
                     RetentionStrategy, UpfError, parse_upf, parse_upf_text,
                     upf_text, write_upf)

__all__ = [
    "UpfError", "PowerDomain", "RetentionStrategy", "IsolationStrategy",
    "PowerIntent", "parse_upf", "parse_upf_text", "upf_text", "write_upf",
    "AuditResult", "audit", "intent_for_core",
]
