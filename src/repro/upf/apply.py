"""Audit a netlist against a UPF power-intent description.

The paper contrasts its approach with Crone & Chidolue's: *they* verify
a design against "a given power management scheme usually given by a
UPF format"; *this* work uses STE to design the scheme itself.  Both
directions need the same plumbing — a checkable correspondence between
the power intent and the netlist — which `audit` provides:

* every element a retention strategy names must exist in the netlist
  and be implemented with retention registers (correctly wired to the
  strategy's save/restore net);
* every retention register in the netlist must be covered by some
  strategy (no accidental/undocumented retention);
* strategy elements must belong to their strategy's power domain.

`intent_for_core` emits the canonical UPF description of our Fig. 4
core — the artefact a designer would hand to a commercial
implementation flow after the STE methodology has settled *what* to
retain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..netlist import Circuit
from ..retention.analysis import classify_registers, group_of_register
from .format import (IsolationStrategy, PowerDomain, PowerIntent,
                     RetentionStrategy)

__all__ = ["AuditResult", "audit", "intent_for_core"]


@dataclass
class AuditResult:
    """Outcome of checking a netlist against a power intent."""

    violations: List[str] = field(default_factory=list)
    covered_registers: int = 0
    retained_registers: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "CLEAN" if self.ok else f"{len(self.violations)} violations"
        lines = [f"UPF audit: {status}; {self.covered_registers} flops "
                 f"covered by retention strategies, "
                 f"{self.retained_registers} retention flops in netlist"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)


def audit(circuit: Circuit, intent: PowerIntent) -> AuditResult:
    """Check the retention intent against the implemented netlist."""
    result = AuditResult()
    groups: Dict[str, List[str]] = {}
    for q in circuit.registers:
        groups.setdefault(group_of_register(q), []).append(q)

    claimed: Dict[str, str] = {}   # group -> strategy name
    for strategy in intent.retentions.values():
        domain = intent.domains.get(strategy.domain)
        for element in strategy.elements:
            if element in claimed:
                result.violations.append(
                    f"element {element!r} retained by both "
                    f"{claimed[element]!r} and {strategy.name!r}")
                continue
            claimed[element] = strategy.name
            if domain is not None and element not in domain.elements:
                result.violations.append(
                    f"strategy {strategy.name!r} retains {element!r} "
                    f"outside its domain {strategy.domain!r}")
            members = groups.get(element)
            if not members:
                result.violations.append(
                    f"strategy {strategy.name!r} names {element!r}, which "
                    f"has no registers in the netlist")
                continue
            for q in members:
                reg = circuit.registers[q]
                result.covered_registers += 1
                if not reg.is_retention:
                    result.violations.append(
                        f"{q} is covered by retention strategy "
                        f"{strategy.name!r} but is a plain register")
                elif strategy.save_signal is not None and \
                        reg.nret != strategy.save_signal[0]:
                    result.violations.append(
                        f"{q} retention control {reg.nret!r} does not "
                        f"match strategy save net "
                        f"{strategy.save_signal[0]!r}")

    for q, reg in circuit.registers.items():
        if reg.is_retention:
            result.retained_registers += 1
            if group_of_register(q) not in claimed:
                result.violations.append(
                    f"{q} is a retention register but no strategy "
                    f"covers its group {group_of_register(q)!r}")
    return result


def intent_for_core(circuit: Circuit, *,
                    domain: str = "PD_core",
                    strategy: str = "ret_architectural",
                    save_net: str = "NRET") -> PowerIntent:
    """The canonical UPF description of a selective-retention core:
    one power domain over every register group, one retention strategy
    covering exactly the groups implemented with retention flops."""
    classes = classify_registers(circuit)
    all_groups = [c.group for c in classes]
    retained_groups = [c.group for c in classes if c.retained > 0]
    intent = PowerIntent()
    intent.domains[domain] = PowerDomain(domain, all_groups)
    intent.retentions[strategy] = RetentionStrategy(
        name=strategy,
        domain=domain,
        elements=retained_groups,
        retention_power_net="VDD_ret",
        save_signal=(save_net, "negedge"),
        restore_signal=(save_net, "posedge"),
    )
    intent.isolations["iso_outputs"] = IsolationStrategy(
        name="iso_outputs", domain=domain, clamp_value=0)
    return intent
