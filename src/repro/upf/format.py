"""A minimal Unified Power Format (UPF) subset — power-intent capture.

"Total hardware state retention, and power gating, can be implemented
with current EDA tools, together with the addition of unified power
format (UPF) annotation of power intent … UPF specifies the supply
network, switches, isolation, retention and other aspects relevant to
power management of an electronic system."  (§I, citing the Accellera
UPF 1.0 standard, Feb 2007)

This module carries the slice of UPF the methodology needs: power
domains, retention strategies (which register groups get retention
flops, and the save/restore control nets), and isolation strategies.
It parses and writes the Tcl-flavoured command syntax of UPF 1.0 for
those commands::

    create_power_domain PD_core -elements {PC Reg IM_cell DM_cell IFR}
    set_retention ret_arch -domain PD_core \
        -retention_power_net VDD_ret -elements {PC Reg IM_cell DM_cell} \
        -save_signal {NRET negedge} -restore_signal {NRET posedge}
    set_isolation iso_out -domain PD_core -clamp_value 0

`repro.upf.apply` audits a netlist against a :class:`PowerIntent` —
the automated version of the paper's manual check that exactly the
architectural state is implemented with retention registers.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field
from typing import Dict, IO, List, Optional, Tuple

__all__ = ["UpfError", "PowerDomain", "RetentionStrategy",
           "IsolationStrategy", "PowerIntent", "parse_upf",
           "parse_upf_text", "upf_text", "write_upf"]


class UpfError(Exception):
    """Malformed or unsupported UPF input."""


@dataclass
class PowerDomain:
    name: str
    elements: List[str] = field(default_factory=list)


@dataclass
class RetentionStrategy:
    name: str
    domain: str
    elements: List[str] = field(default_factory=list)
    retention_power_net: Optional[str] = None
    save_signal: Optional[Tuple[str, str]] = None     # (net, edge)
    restore_signal: Optional[Tuple[str, str]] = None


@dataclass
class IsolationStrategy:
    name: str
    domain: str
    clamp_value: int = 0
    elements: List[str] = field(default_factory=list)


@dataclass
class PowerIntent:
    """A parsed UPF description."""

    domains: Dict[str, PowerDomain] = field(default_factory=dict)
    retentions: Dict[str, RetentionStrategy] = field(default_factory=dict)
    isolations: Dict[str, IsolationStrategy] = field(default_factory=dict)

    def retained_elements(self) -> List[str]:
        out: List[str] = []
        for strategy in self.retentions.values():
            out.extend(strategy.elements)
        return out

    def domain_of(self, element: str) -> Optional[str]:
        for domain in self.domains.values():
            if element in domain.elements:
                return domain.name
        return None


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def _split_commands(text: str) -> List[List[str]]:
    """Tcl-ish tokenisation: line continuations, comments, braces."""
    commands: List[List[str]] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        line = pending + line
        pending = ""
        lexer = shlex.shlex(line, posix=True)
        lexer.whitespace_split = True
        # Keep brace groups as single tokens.
        tokens: List[str] = []
        buffer: List[str] = []
        depth = 0
        for token in line.replace("{", " { ").replace("}", " } ").split():
            if token == "{":
                depth += 1
                if depth == 1:
                    buffer = []
                    continue
            if token == "}":
                depth -= 1
                if depth < 0:
                    raise UpfError(f"unbalanced braces in: {line!r}")
                if depth == 0:
                    tokens.append(" ".join(buffer))
                    continue
            if depth > 0:
                buffer.append(token)
            else:
                tokens.append(token)
        if depth != 0:
            raise UpfError(f"unbalanced braces in: {line!r}")
        commands.append(tokens)
    if pending.strip():
        raise UpfError("dangling line continuation at end of file")
    return commands


def _options(tokens: List[str], line: str) -> Tuple[List[str], Dict[str, str]]:
    """Split positional arguments from ``-name value`` options."""
    positional: List[str] = []
    options: Dict[str, str] = {}
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if token.startswith("-"):
            if i + 1 >= len(tokens):
                raise UpfError(f"option {token} missing a value in {line!r}")
            options[token[1:]] = tokens[i + 1]
            i += 2
        else:
            positional.append(token)
            i += 1
    return positional, options


def _signal(value: Optional[str]) -> Optional[Tuple[str, str]]:
    if value is None:
        return None
    parts = value.split()
    if len(parts) == 1:
        return (parts[0], "posedge")
    if len(parts) == 2 and parts[1] in ("posedge", "negedge"):
        return (parts[0], parts[1])
    raise UpfError(f"bad save/restore signal spec {value!r}")


def parse_upf_text(text: str) -> PowerIntent:
    intent = PowerIntent()
    for tokens in _split_commands(text):
        command, rest = tokens[0], tokens[1:]
        line = " ".join(tokens)
        positional, options = _options(rest, line)
        if command == "create_power_domain":
            if len(positional) != 1:
                raise UpfError(f"create_power_domain needs a name: {line!r}")
            name = positional[0]
            if name in intent.domains:
                raise UpfError(f"duplicate power domain {name!r}")
            intent.domains[name] = PowerDomain(
                name, options.get("elements", "").split())
        elif command == "set_retention":
            if len(positional) != 1:
                raise UpfError(f"set_retention needs a name: {line!r}")
            name = positional[0]
            domain = options.get("domain")
            if not domain:
                raise UpfError(f"set_retention requires -domain: {line!r}")
            if domain not in intent.domains:
                raise UpfError(f"unknown domain {domain!r} in {line!r}")
            intent.retentions[name] = RetentionStrategy(
                name=name,
                domain=domain,
                elements=options.get("elements", "").split(),
                retention_power_net=options.get("retention_power_net"),
                save_signal=_signal(options.get("save_signal")),
                restore_signal=_signal(options.get("restore_signal")),
            )
        elif command == "set_isolation":
            if len(positional) != 1:
                raise UpfError(f"set_isolation needs a name: {line!r}")
            name = positional[0]
            domain = options.get("domain")
            if not domain or domain not in intent.domains:
                raise UpfError(f"set_isolation needs a known -domain: "
                               f"{line!r}")
            intent.isolations[name] = IsolationStrategy(
                name=name,
                domain=domain,
                clamp_value=int(options.get("clamp_value", "0")),
                elements=options.get("elements", "").split(),
            )
        else:
            raise UpfError(f"unsupported UPF command {command!r}")
    return intent


def parse_upf(stream: IO[str]) -> PowerIntent:
    return parse_upf_text(stream.read())


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def upf_text(intent: PowerIntent) -> str:
    lines: List[str] = ["# UPF 1.0 subset written by repro.upf"]
    for domain in intent.domains.values():
        lines.append(f"create_power_domain {domain.name} "
                     f"-elements {{{' '.join(domain.elements)}}}")
    for ret in intent.retentions.values():
        parts = [f"set_retention {ret.name}", f"-domain {ret.domain}"]
        if ret.retention_power_net:
            parts.append(f"-retention_power_net {ret.retention_power_net}")
        parts.append(f"-elements {{{' '.join(ret.elements)}}}")
        if ret.save_signal:
            parts.append(f"-save_signal {{{ret.save_signal[0]} "
                         f"{ret.save_signal[1]}}}")
        if ret.restore_signal:
            parts.append(f"-restore_signal {{{ret.restore_signal[0]} "
                         f"{ret.restore_signal[1]}}}")
        lines.append(" ".join(parts))
    for iso in intent.isolations.values():
        parts = [f"set_isolation {iso.name}", f"-domain {iso.domain}",
                 f"-clamp_value {iso.clamp_value}"]
        if iso.elements:
            parts.append(f"-elements {{{' '.join(iso.elements)}}}")
        lines.append(" ".join(parts))
    return "\n".join(lines) + "\n"


def write_upf(intent: PowerIntent, stream: IO[str]) -> None:
    stream.write(upf_text(intent))
