"""Minimal VCD (Value Change Dump) writer.

Lets any captured :class:`~repro.sim.waveform.Waveform` be inspected in
a standard waveform viewer (GTKWave and friends) — the practical
debugging loop a designer using this methodology would want.
"""

from __future__ import annotations

from typing import IO, Dict, List, Optional, Sequence

from .waveform import Waveform

__all__ = ["write_vcd", "vcd_text"]

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short VCD identifier codes: !, ", #, … then two-char codes."""
    if index < len(_ID_CHARS):
        return _ID_CHARS[index]
    hi, lo = divmod(index - len(_ID_CHARS), len(_ID_CHARS))
    return _ID_CHARS[hi] + _ID_CHARS[lo]


def vcd_text(waveform: Waveform, *, module: str = "repro",
             timescale: str = "1ns", date: str = "reproduction run") -> str:
    """Serialise the waveform to VCD text."""
    scalar_ids: Dict[str, str] = {}
    bus_ids: Dict[str, str] = {}
    index = 0
    for node in waveform.traces:
        scalar_ids[node] = _identifier(index)
        index += 1
    bus_widths: Dict[str, int] = {}
    for name, row in waveform.buses.items():
        bus_ids[name] = _identifier(index)
        index += 1
        known = [v for v in row if v is not None]
        bus_widths[name] = max((v.bit_length() for v in known),
                               default=1) or 1

    lines: List[str] = [
        f"$date {date} $end",
        f"$timescale {timescale} $end",
        f"$scope module {module} $end",
    ]
    for node, ident in scalar_ids.items():
        safe = node.replace(" ", "_")
        lines.append(f"$var wire 1 {ident} {safe} $end")
    for name, ident in bus_ids.items():
        width = bus_widths[name]
        lines.append(f"$var wire {width} {ident} {name} "
                     f"[{width - 1}:0] $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    steps = 0
    for row in list(waveform.traces.values()) + list(waveform.buses.values()):
        steps = max(steps, len(row))

    last_scalar: Dict[str, Optional[str]] = {n: None for n in scalar_ids}
    last_bus: Dict[str, object] = {n: object() for n in bus_ids}
    for t in range(steps):
        changes: List[str] = []
        for node, ident in scalar_ids.items():
            row = waveform.traces[node]
            value = row[t] if t < len(row) else "X"
            char = {"0": "0", "1": "1"}.get(value, "x")
            if char != last_scalar[node]:
                changes.append(f"{char}{ident}")
                last_scalar[node] = char
        for name, ident in bus_ids.items():
            row = waveform.buses[name]
            value = row[t] if t < len(row) else None
            if value != last_bus[name]:
                if value is None:
                    bits = "x" * bus_widths[name]
                else:
                    bits = format(value, "b")
                changes.append(f"b{bits} {ident}")
                last_bus[name] = value
        if changes or t == 0:
            lines.append(f"#{t}")
            lines.extend(changes)
    lines.append(f"#{steps}")
    return "\n".join(lines) + "\n"


def write_vcd(waveform: Waveform, stream: IO[str], **kwargs) -> None:
    stream.write(vcd_text(waveform, **kwargs))
