"""Scalar simulation, waveform capture/rendering, and VCD output."""

from .scalar import ScalarSimulator, enumerate_runs
from .vcd import vcd_text, write_vcd
from .waveform import Waveform

__all__ = ["ScalarSimulator", "enumerate_runs", "Waveform", "vcd_text",
           "write_vcd"]
