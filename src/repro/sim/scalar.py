"""Two-valued (0/1) event simulation — the conventional baseline.

"Conventional simulation (using 0s and 1s) rapidly becomes infeasible
even when there is no retention.  In case of retention the state-space
grows massively because of the interaction between the retained and
non-retained state."  (§I)

:class:`ScalarSimulator` runs a netlist concretely: one assignment of
input bits per phase, integer node values, same levelized schedule and
register semantics as the symbolic model (the two are cross-checked in
the tests — a scalar run must equal the symbolic run restricted to the
same assignment).  `enumerate_runs` is the exhaustive-checking baseline
of experiment E10: it re-simulates once per assignment of the chosen
stimulus bits, which is the 2^n wall the paper contrasts with a single
symbolic run.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..netlist import Circuit, NetlistError
from ..netlist.validate import combinational_order, input_cone

__all__ = ["ScalarSimulator", "enumerate_runs"]

Bit = int  # 0 or 1


class ScalarSimulator:
    """Concrete phase-accurate simulation of a circuit.

    Unknown values are represented as None (three-valued at reset, so
    registers start unknown just like in the symbolic model).  Gates
    propagate None pessimistically but short-circuit where a binary
    value determines the output (0 AND x = 0).
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        cone = input_cone(circuit)
        order = combinational_order(circuit)
        self._pre = [n for n in order if n in cone]
        self._post = [n for n in order if n not in cone]
        self._prev: Optional[Dict[str, Optional[Bit]]] = None
        self.time = 0
        self.history: List[Dict[str, Optional[Bit]]] = []

    def reset(self) -> None:
        self._prev = None
        self.time = 0
        self.history = []

    # ------------------------------------------------------------------
    def step(self, inputs: Mapping[str, Bit]) -> Dict[str, Optional[Bit]]:
        """Advance one phase with the given primary-input values."""
        values: Dict[str, Optional[Bit]] = {}
        for node in self.circuit.inputs:
            values[node] = inputs.get(node)

        for node in self._pre:
            values[node] = self._eval_comb(node, values)

        prev = self._prev
        for q, reg in self.circuit.registers.items():
            if reg.kind != "dff":
                continue
            values[q] = self._dff(reg, q, values, prev)

        for node in self._post:
            values[node] = self._eval_comb(node, values, prev)

        self._prev = values
        self.time += 1
        self.history.append(values)
        return values

    def run(self, stimulus: Sequence[Mapping[str, Bit]]
            ) -> List[Dict[str, Optional[Bit]]]:
        for inputs in stimulus:
            self.step(inputs)
        return self.history

    def value(self, node: str) -> Optional[Bit]:
        if self._prev is None:
            raise NetlistError("no step has been simulated yet")
        return self._prev.get(node)

    def bus_value(self, bus: Sequence[str]) -> Optional[int]:
        """Unsigned integer on a bus, or None if any bit is unknown."""
        total = 0
        for i, node in enumerate(bus):
            bit = self.value(node)
            if bit is None:
                return None
            total |= bit << i
        return total

    # ------------------------------------------------------------------
    def _eval_comb(self, node: str, values, prev=None) -> Optional[Bit]:
        gate = self.circuit.gates.get(node)
        if gate is not None:
            ins = [values.get(i) for i in gate.ins]
            return _gate(gate.op, ins)
        reg = self.circuit.registers.get(node)
        if reg is not None and reg.kind == "latch":
            en = values.get(reg.clk)
            d = values.get(reg.d)
            q_prev = prev.get(node) if prev else None
            if en == 1:
                return d
            if en == 0:
                return q_prev
            return d if d == q_prev else None
        raise NetlistError(f"no driver for node {node!r}")

    def _dff(self, reg, q, values, prev) -> Optional[Bit]:
        if prev is None:
            return None
        q_prev = prev.get(q)
        nret = values.get(reg.nret) if reg.nret else 1
        nrst = values.get(reg.nrst) if reg.nrst else 1
        clk_prev = prev.get(reg.clk)
        clk_now = values.get(reg.clk)
        if reg.edge == "fall":
            edge = _and(clk_prev, _not(clk_now))
        else:
            edge = _and(_not(clk_prev), clk_now)
        if reg.enable is not None:
            edge = _and(edge, prev.get(reg.enable))
        value = _mux(edge, prev.get(reg.d), q_prev)
        if reg.nrst is not None:
            value = _mux(nrst, value, reg.init)
        if reg.nret is not None:
            value = _mux(nret, value, q_prev)
        return value


# ----------------------------------------------------------------------
# Three-valued scalar gate algebra (None = unknown)
# ----------------------------------------------------------------------
def _not(a):
    return None if a is None else 1 - a


def _and(a, b):
    if a == 0 or b == 0:
        return 0
    if a == 1 and b == 1:
        return 1
    return None


def _or(a, b):
    if a == 1 or b == 1:
        return 1
    if a == 0 and b == 0:
        return 0
    return None


def _xor(a, b):
    if a is None or b is None:
        return None
    return a ^ b


def _mux(s, t, e):
    if s == 1:
        return t
    if s == 0:
        return e
    return t if t == e else None


def _gate(op: str, ins) -> Optional[Bit]:
    if op == "CONST0":
        return 0
    if op == "CONST1":
        return 1
    if op == "BUF":
        return ins[0]
    if op == "NOT":
        return _not(ins[0])
    if op in ("AND", "NAND"):
        acc: Optional[Bit] = 1
        for v in ins:
            acc = _and(acc, v)
        return _not(acc) if op == "NAND" else acc
    if op in ("OR", "NOR"):
        acc = 0
        for v in ins:
            acc = _or(acc, v)
        return _not(acc) if op == "NOR" else acc
    if op == "XOR":
        return _xor(ins[0], ins[1])
    if op == "XNOR":
        return _not(_xor(ins[0], ins[1]))
    if op == "MUX":
        return _mux(ins[0], ins[1], ins[2])
    raise NetlistError(f"unknown gate op {op!r}")


# ----------------------------------------------------------------------
# Exhaustive checking baseline (experiment E10)
# ----------------------------------------------------------------------
def enumerate_runs(circuit: Circuit,
                   bits: Sequence[str],
                   stimulus: Callable[[Mapping[str, Bit]],
                                      Sequence[Mapping[str, Bit]]],
                   oracle: Callable[[ScalarSimulator, Mapping[str, Bit]],
                                    bool],
                   limit: Optional[int] = None) -> Tuple[int, bool]:
    """Conventional exhaustive verification: one full simulation per
    assignment of *bits*.

    *stimulus* maps an assignment to a phase-by-phase input schedule;
    *oracle* inspects the finished simulator.  Returns (runs, all_ok).
    The run count is the quantity that explodes exponentially — the
    benchmark plots it against the single symbolic run.
    """
    runs = 0
    for values in itertools.product((0, 1), repeat=len(bits)):
        if limit is not None and runs >= limit:
            break
        assignment = dict(zip(bits, values))
        sim = ScalarSimulator(circuit)
        sim.run(stimulus(assignment))
        runs += 1
        if not oracle(sim, assignment):
            return runs, False
    return runs, True
