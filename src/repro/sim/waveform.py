r"""Waveform capture and ASCII rendering (Fig. 3).

The paper's Fig. 3 shows clock/NRET/NRST and the state bands across the
sleep and resume operations.  :class:`Waveform` holds per-node scalar
traces ('0'/'1'/'X'/'T') harvested either from a scalar simulation or
from an STE trajectory under a variable assignment, and renders them as
two-row ASCII waveforms::

    clock  ‾\_____/‾\_/‾
    NRET   ‾‾‾\___/‾‾‾‾‾

Buses render as hex/label bands.  `from_trajectory` is how the
examples regenerate Fig. 3 straight out of a model-checking run.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..ternary import TernaryValue

__all__ = ["Waveform"]


class Waveform:
    """Per-node scalar traces over phases."""

    def __init__(self):
        self.traces: Dict[str, List[str]] = {}
        self.buses: Dict[str, List[Optional[int]]] = {}

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    def record(self, node: str, values: Sequence[str]) -> None:
        self.traces[node] = list(values)

    def record_bus(self, name: str, per_time_values: Sequence[Optional[int]]
                   ) -> None:
        self.buses[name] = list(per_time_values)

    @classmethod
    def from_scalar_history(cls, history: Sequence[Mapping[str, Optional[int]]],
                            nodes: Sequence[str],
                            buses: Optional[Mapping[str, Sequence[str]]] = None
                            ) -> "Waveform":
        wf = cls()
        for node in nodes:
            wf.record(node, ["X" if s.get(node) is None else str(s[node])
                             for s in history])
        for name, bits in (buses or {}).items():
            row: List[Optional[int]] = []
            for state in history:
                total, known = 0, True
                for i, bit in enumerate(bits):
                    v = state.get(bit)
                    if v is None:
                        known = False
                        break
                    total |= v << i
                row.append(total if known else None)
            wf.record_bus(name, row)
        return wf

    @classmethod
    def from_trajectory(cls, trajectory: Sequence[Mapping[str, TernaryValue]],
                        assignment: Mapping[str, bool],
                        nodes: Sequence[str],
                        buses: Optional[Mapping[str, Sequence[str]]] = None
                        ) -> "Waveform":
        """Collapse an STE trajectory to scalars under *assignment*
        (variables absent from the assignment default to False)."""
        wf = cls()

        def scalar(value: Optional[TernaryValue]) -> str:
            if value is None:
                return "X"
            mgr = value.mgr
            local = dict(assignment)
            for name in mgr.support(value.h) | mgr.support(value.l):
                local.setdefault(name, False)
            return value.scalar(local)

        for node in nodes:
            wf.record(node, [scalar(state.get(node)) for state in trajectory])
        for name, bits in (buses or {}).items():
            row: List[Optional[int]] = []
            for state in trajectory:
                chars = [scalar(state.get(bit)) for bit in bits]
                if all(c in "01" for c in chars):
                    row.append(sum(1 << i for i, c in enumerate(chars)
                                   if c == "1"))
                else:
                    row.append(None)
            wf.record_bus(name, row)
        return wf

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, order: Optional[Sequence[str]] = None,
               width_per_step: int = 3) -> str:
        """Two-row-per-signal ASCII waveform plus bus value bands."""
        names = list(order) if order else (list(self.traces)
                                           + list(self.buses))
        label_w = max((len(n) for n in names), default=4) + 2
        steps = 0
        for row in list(self.traces.values()) + list(self.buses.values()):
            steps = max(steps, len(row))
        lines: List[str] = []
        header = " " * label_w + "".join(f"{t:<{width_per_step}}"
                                         for t in range(steps))
        lines.append(header)
        for name in names:
            if name in self.traces:
                lines.extend(self._render_signal(name, label_w,
                                                 width_per_step))
            elif name in self.buses:
                lines.append(self._render_bus(name, label_w, width_per_step))
        return "\n".join(lines)

    def _render_signal(self, name: str, label_w: int, w: int) -> List[str]:
        values = self.traces[name]
        high, low = [], []
        prev = None
        for v in values:
            if v == "1":
                edge = prev == "0"
                high.append(("/" if edge else "") + "‾" * (w - 1)
                            if edge else "‾" * w)
                low.append(" " * w)
            elif v == "0":
                edge = prev == "1"
                high.append(" " * w)
                low.append(("\\" if edge else "") + "_" * (w - 1)
                           if edge else "_" * w)
            else:
                high.append(v[0].lower() * w)
                low.append(" " * w)
            prev = v
        return [" " * label_w + "".join(high),
                f"{name:<{label_w}}" + "".join(low)]

    def _render_bus(self, name: str, label_w: int, w: int) -> str:
        row = self.buses[name]
        cells = []
        for v in row:
            text = "--" if v is None else f"{v:x}"
            cells.append(f"{text:<{w}}"[:w])
        return f"{name:<{label_w}}" + "".join(cells)
