"""Multiprocess property checking — fan a suite out across workers.

The paper's workload is "check a whole retention property suite against
a power-gated core".  One :class:`~repro.ste.CheckSession` amortises
the per-suite costs inside a process; this module amortises the *wall
clock* across processes: properties are grouped by cone of influence
(so each worker compiles every cone it owns exactly once — one
:class:`~repro.bdd.BDDManager` / :class:`~repro.sat.BMCEngine` per
worker), the groups are bin-packed over ``jobs`` worker processes, and
the per-worker session reports are merged into a single
:class:`~repro.ste.SessionReport` with per-engine win counts.

BDD nodes, compiled models and solver states are process-local and not
picklable, so workers do not receive the caller's property objects:
they receive a :class:`SuiteSpec` — the recipe (design, geometry,
schedule, extras) from which :func:`repro.retention.build_suite`
deterministically rebuilds the identical suite — plus the property
*names* they own.  Results travel back as :class:`RemoteResult`, a
picklable projection of either engine's report (verdict, failure
points, timing, and a pre-rendered counterexample trace for failing
properties).  Verdicts are bit-identical to a serial run by
construction: every worker runs the same ``CheckSession`` decision
procedures on the same rebuilt formulas.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import time as _time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .engine import ENGINES
from .netlist import Circuit, cone_of_influence
from .ste.formula import formula_nodes
from .ste.session import CheckSession, PropertyOutcome, SessionReport

__all__ = ["SuiteSpec", "RemoteFailure", "RemoteResult",
           "partition_by_cone", "run_parallel"]

#: Parent-side state inherited by fork()ed workers via copy-on-write:
#: (spec, session, {name: property}).  The parent stashes its
#: already-built suite and warmed CheckSession here just before
#: forking, so workers skip the rebuild and start from the parent's
#: interned formulas, compiled cone models, incremental SAT contexts
#: and portfolio race history.  Spawn-based platforms see None and
#: rebuild from the spec instead.
_FORK_STATE: Optional[Tuple["SuiteSpec", CheckSession, Dict]] = None

#: design name -> repro.cpu factory (kept as names so a SuiteSpec
#: pickles as plain data).
_DESIGNS = ("fixed", "buggy", "full-retention", "no-retention")

_VARIANT_TO_DESIGN = {
    "selective-ifr": "fixed",
    "buggy-fetchreg": "buggy",
    "full-retention": "full-retention",
    "no-retention": "no-retention",
}


@dataclass(frozen=True)
class SuiteSpec:
    """A picklable recipe for rebuilding a property suite in a worker.

    Workers own their BDD managers and solvers, so what crosses the
    process boundary is not the suite but the deterministic recipe
    that :func:`repro.retention.build_suite` turns back into it.
    """

    design: str = "fixed"
    nregs: int = 2
    imem_depth: int = 2
    dmem_depth: int = 2
    sleep: bool = False
    include_extras: bool = False

    def __post_init__(self):
        if self.design not in _DESIGNS:
            raise ValueError(f"unknown design {self.design!r}; "
                             f"expected one of {_DESIGNS}")

    @classmethod
    def for_core(cls, core, properties: Sequence) -> "SuiteSpec":
        """Derive the spec that rebuilds *properties* on *core* —
        requires a core built by a :mod:`repro.cpu` factory and
        properties from :func:`~repro.retention.build_suite` (matched
        by name in the workers)."""
        cfg = core.config
        design = _VARIANT_TO_DESIGN.get(cfg.variant)
        if design is None:
            raise ValueError(
                f"core variant {cfg.variant!r} has no parallel factory; "
                f"rebuildable variants: {sorted(_VARIANT_TO_DESIGN)}")
        sleep = any(p.schedule.is_sleep for p in properties)
        extras = any(getattr(p, "unit", "") == "extra" for p in properties)
        return cls(design=design, nregs=cfg.nregs,
                   imem_depth=cfg.imem_depth, dmem_depth=cfg.dmem_depth,
                   sleep=sleep, include_extras=extras)

    def build(self):
        """(core, manager, suite) — executed inside each worker."""
        from .bdd import BDDManager
        from .cpu import (buggy_core, fixed_core, full_retention_core,
                          no_retention_core)
        from .retention import build_suite
        factory = {"fixed": fixed_core, "buggy": buggy_core,
                   "full-retention": full_retention_core,
                   "no-retention": no_retention_core}[self.design]
        core = factory(nregs=self.nregs, imem_depth=self.imem_depth,
                       dmem_depth=self.dmem_depth)
        mgr = BDDManager()
        suite = build_suite(core, mgr, sleep=self.sleep,
                            include_extras=self.include_extras)
        return core, mgr, suite


@dataclass(frozen=True)
class RemoteFailure:
    """One (time, node) violation point, stripped of engine objects."""

    time: int
    node: str


@dataclass
class RemoteResult:
    """A picklable projection of either engine's report — the
    :class:`~repro.engine.EngineReport` surface minus the live BDD /
    solver objects, which stay in the worker that produced them."""

    engine: str
    passed: bool
    vacuous: bool
    failures: List[RemoteFailure]
    depth: int
    checked_points: int
    elapsed_seconds: float
    #: pre-rendered ``format_trace`` output for a failing property
    #: (None when passed) — witnesses cannot travel, their traces can.
    cex_text: Optional[str] = None

    def summary(self) -> str:
        status = "PASS" if self.passed else \
            f"FAIL({len(self.failures)} points)"
        if self.vacuous:
            status += " [VACUOUS]"
        return (f"{self.engine.upper()} {status} depth={self.depth} "
                f"points={self.checked_points} "
                f"time={self.elapsed_seconds:.3f}s")


def _remote_result(result) -> RemoteResult:
    cex_text = None
    if not result.passed:
        from .ste.counterexample import extract, format_trace
        cex = extract(result)
        if cex is not None:
            cex_text = format_trace(cex)
    return RemoteResult(
        engine=result.engine,
        passed=result.passed,
        vacuous=result.vacuous,
        failures=[RemoteFailure(f.time, f.node) for f in result.failures],
        depth=result.depth,
        checked_points=getattr(result, "checked_points", 0),
        elapsed_seconds=result.elapsed_seconds,
        cex_text=cex_text,
    )


def _report_delta(end: SessionReport, base: Optional[SessionReport]
                  ) -> Dict:
    """This worker's contribution: *end* minus the state the session
    had when the worker started (None = fresh session).  Counters are
    subtracted; gauges (node counts, table sizes) keep their end
    values; outcomes keep only the newly checked suffix."""
    skip = len(base.outcomes) if base is not None else 0
    outcomes = [PropertyOutcome(
        name=o.name,
        result=_remote_result(o.result),
        cone_nodes=o.cone_nodes,
        reused_model=o.reused_model,
        engine=o.engine) for o in end.outcomes[skip:]]
    engine_stats = dict(end.engine_stats)
    cache_stats = {op: dict(counts)
                   for op, counts in end.cache_stats.items()}
    models_compiled = end.models_compiled
    model_reuses = end.model_reuses
    bdd_stats = dict(end.bdd_stats)
    if base is not None:
        models_compiled -= base.models_compiled
        model_reuses -= base.model_reuses
        for k, v in base.engine_stats.items():
            if k != "max_learnt_len":
                engine_stats[k] = engine_stats.get(k, 0) - v
        for op, counts in base.cache_stats.items():
            slot = cache_stats.get(op)
            if slot is not None:
                for k in ("hits", "misses"):
                    slot[k] = slot.get(k, 0) - counts.get(k, 0)
        # Gauges too: a fork-COW worker inherits the parent's whole
        # manager, so its absolute node/table counts re-count the
        # inherited state; reporting growth keeps the merged sums from
        # counting the parent (workers+1) times over.
        for k, v in base.bdd_stats.items():
            bdd_stats[k] = bdd_stats.get(k, 0) - v
    return {
        "outcomes": outcomes,
        "models_compiled": models_compiled,
        "model_reuses": model_reuses,
        "bdd_stats": bdd_stats,
        "cache_stats": cache_stats,
        "engine_stats": engine_stats,
    }


def _run_partition(spec: SuiteSpec, names: Sequence[str],
                   engine: str) -> Dict:
    """Worker entry point: check the named properties through one
    CheckSession and return picklable outcomes plus the worker's
    aggregate statistics.

    A fork()ed worker resumes the parent's stashed session (private
    copy-on-write copy — compiled models, interned CNF, race history
    and all); otherwise the suite is rebuilt from the spec."""
    state = _FORK_STATE
    if state is not None and state[0] == spec:
        _, session, by_name = state
        base = session.report()
    else:
        core, mgr, suite = spec.build()
        by_name = {p.name: p for p in suite}
        session = CheckSession(core.circuit, mgr, engine=engine)
        base = None
    unknown = sorted(set(names) - set(by_name))
    if unknown:
        raise ValueError(
            f"unknown properties {', '.join(unknown)}; "
            f"valid names: {', '.join(sorted(by_name))}")
    for name in names:
        prop = by_name[name]
        session.check(prop.antecedent, prop.consequent, name=name)
    return _report_delta(session.report(), base)


def partition_by_cone(circuit: Circuit, properties: Sequence,
                      jobs: int) -> List[List[str]]:
    """Bin-pack the properties over *jobs* workers, keeping cone
    groups together as far as balance allows.

    Properties sharing a cone of influence are assigned contiguously,
    so a worker compiles each cone it owns once — the process-level
    analogue of the session's cone-keyed model cache.  A group larger
    than the ideal per-worker share (the paper's suites concentrate
    24 of 26 properties on one core-wide cone) is *split* across
    workers: each of those workers pays one compile of the shared
    cone, which is what buys the wall-clock parallelism.  Groups are
    placed largest-first onto the least-loaded bin (load = property
    count); empty bins are dropped.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    groups: Dict[FrozenSet[str], List[str]] = {}
    key_of_roots: Dict[FrozenSet[str], FrozenSet[str]] = {}
    order: List[FrozenSet[str]] = []
    for prop in properties:
        roots = frozenset(formula_nodes(prop.antecedent)) | frozenset(
            formula_nodes(prop.consequent))
        key = key_of_roots.get(roots)
        if key is None:
            cone = cone_of_influence(circuit, sorted(roots))
            key = frozenset(cone.inputs) | frozenset(cone.gates) \
                | frozenset(cone.registers)
            key_of_roots[roots] = key
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(prop.name)
    bins: List[List[str]] = [[] for _ in range(jobs)]
    loads = [0] * jobs
    target = -(-len(properties) // jobs)     # ceil: ideal bin size
    # Deterministic: sort by (-size, first name) so ties break stably.
    for key in sorted(order, key=lambda k: (-len(groups[k]),
                                            groups[k][0])):
        names = groups[key]
        i = 0
        while i < len(names):
            b = loads.index(min(loads))
            room = max(1, target - loads[b])
            chunk = names[i:i + room]
            bins[b].extend(chunk)
            loads[b] += len(chunk)
            i += room
    return [b for b in bins if b]


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:                   # non-Linux
        return os.cpu_count() or 1


def run_parallel(core, properties: Sequence, *, jobs: int,
                 engine: str = "portfolio",
                 spec: Optional[SuiteSpec] = None,
                 oversubscribe: bool = False,
                 mgr=None) -> SessionReport:
    """Check *properties* against *core* across up to *jobs* worker
    processes; returns one merged :class:`SessionReport`.

    *engine* is any :data:`~repro.engine.ENGINES` member and applies
    inside every worker ("portfolio" races both backends per property
    there).  *spec* overrides the worker rebuild recipe; by default it
    is derived from the core's config and the properties (which must
    therefore come from :func:`~repro.retention.build_suite`).
    Outcome order matches the input property order, so
    ``report.verdicts()`` is directly comparable with a serial run's.

    Worker count is capped at the CPUs actually available unless
    *oversubscribe* is set: splitting a suite across more processes
    than cores forfeits the suite-level cache amortisation both
    engines depend on and makes every worker slower — on one core the
    whole run degrades to a single in-process session, which is the
    fastest configuration that machine can execute.  Pass *mgr* (the
    manager the property formulas were built on) to let that
    degenerate path check the caller's suite directly instead of
    rebuilding it from the spec.

    On fork-capable platforms the parent first checks one *pilot*
    property per cone (which also settles the portfolio's per-cone
    winner), then forks: workers inherit the parent's warmed state —
    interned formulas, compiled cone models, BDD computed tables, SAT
    contexts, race history — by copy-on-write instead of rebuilding.
    """
    global _FORK_STATE
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; "
                         f"expected one of {ENGINES}")
    properties = list(properties)
    names = [p.name for p in properties]
    if len(set(names)) != len(names):
        raise ValueError("parallel runs address properties by name; "
                         "the suite contains duplicates")
    if spec is None:
        spec = SuiteSpec.for_core(core, properties)
    started = _time.perf_counter()
    workers = jobs if oversubscribe else max(
        1, min(jobs, _available_cpus()))
    parts = partition_by_cone(core.circuit, properties, workers)

    worker_reports: List[Dict] = []
    if len(parts) <= 1:
        # Degenerate fan-out: run the one partition in-process.  With
        # the caller's manager (the one the property formulas were
        # built on) the caller's suite is checked directly; without it
        # the properties' BDD constraints are unreadable here, so the
        # partition rebuilds from the spec like any worker would.
        if mgr is not None:
            session = CheckSession(core.circuit, mgr, engine=engine)
            for prop in properties:
                session.check(prop.antecedent, prop.consequent,
                              name=prop.name)
            worker_reports.append(_report_delta(session.report(), None))
        else:
            worker_reports.append(_run_partition(spec, names, engine))
        parts = [names]
    else:
        ctx = _mp_context()
        pilot_names: List[str] = []
        if ctx.get_start_method() == "fork":
            # Pilot + stash: warm one property per cone in the parent,
            # hand the warmed session to the workers through fork COW.
            p_core, p_mgr, p_suite = spec.build()
            by_name = {p.name: p for p in p_suite}
            session = CheckSession(p_core.circuit, p_mgr, engine=engine)
            seen_first: Dict[frozenset, str] = {}
            for part in parts:
                pilot = part[0]
                prop = by_name[pilot]
                roots = frozenset(formula_nodes(prop.antecedent)) \
                    | frozenset(formula_nodes(prop.consequent))
                if roots not in seen_first:
                    seen_first[roots] = pilot
            pilot_names = sorted(set(seen_first.values()),
                                 key=names.index)
            for pilot in pilot_names:
                prop = by_name[pilot]
                session.check(prop.antecedent, prop.consequent,
                              name=pilot)
            worker_reports.append(_report_delta(session.report(), None))
            _FORK_STATE = (spec, session, by_name)
            parts = [[n for n in part if n not in pilot_names]
                     for part in parts]
            parts = [part for part in parts if part]
            if not parts:
                # Every property was a pilot: the parent did all the
                # work and no pool is needed.
                _FORK_STATE = None
        try:
            if parts:
                # Freeze the warmed heap before forking (the CPython-
                # documented pattern): the BDD tables are millions of
                # long-lived objects, and moving them to the permanent
                # generation keeps the children's cyclic-GC passes
                # from touching — and copy-on-write duplicating —
                # those pages.
                gc.collect()
                gc.freeze()
                with ProcessPoolExecutor(max_workers=len(parts),
                                         mp_context=ctx) as pool:
                    futures = [pool.submit(_run_partition, spec, part,
                                           engine)
                               for part in parts]
                    worker_reports.extend(f.result() for f in futures)
        finally:
            _FORK_STATE = None
            gc.unfreeze()

    by_name_out: Dict[str, PropertyOutcome] = {}
    models_compiled = 0
    model_reuses = 0
    bdd_stats: Dict[str, int] = {}
    cache_stats: Dict[str, Dict[str, int]] = {}
    engine_stats: Dict[str, int] = {}
    for report in worker_reports:
        for outcome in report["outcomes"]:
            by_name_out[outcome.name] = outcome
        models_compiled += report["models_compiled"]
        model_reuses += report["model_reuses"]
        for k, v in report["bdd_stats"].items():
            bdd_stats[k] = bdd_stats.get(k, 0) + v
        for op, counts in report["cache_stats"].items():
            slot = cache_stats.setdefault(
                op, {"hits": 0, "misses": 0, "entries": 0})
            for k, v in counts.items():
                slot[k] = slot.get(k, 0) + v
        for k, v in report["engine_stats"].items():
            if k == "max_learnt_len":
                engine_stats[k] = max(engine_stats.get(k, 0), v)
            else:
                engine_stats[k] = engine_stats.get(k, 0) + v

    outcomes = [by_name_out[p.name] for p in properties]
    return SessionReport(
        outcomes=outcomes,
        elapsed_seconds=_time.perf_counter() - started,
        models_compiled=models_compiled,
        model_reuses=model_reuses,
        bdd_stats=bdd_stats,
        cache_stats=cache_stats,
        engine=engine,
        engine_stats=engine_stats,
        jobs=max(1, len(parts)))
