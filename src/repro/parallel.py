"""Multiprocess property checking — fan a suite out across workers.

The paper's workload is "check a whole retention property suite against
a power-gated core".  One :class:`~repro.ste.CheckSession` amortises
the per-suite costs inside a process; this module amortises the *wall
clock* across processes.  Work distribution is a **shared queue**:
properties are grouped by cone of influence into chunks (so a worker
compiles every cone it owns exactly once — one
:class:`~repro.bdd.BDDManager` / SAT context per worker), the chunks
are ordered longest-first by the persistent cache's per-property cost
model, and idle workers *pull* the next chunk instead of being dealt a
static bin — work-stealing, so one unexpectedly slow cone no longer
idles every other worker.  The per-worker session reports are merged
into a single :class:`~repro.ste.SessionReport` with per-engine win
counts.

BDD nodes, compiled models and solver states are process-local and not
picklable, so workers do not receive the caller's property objects:
they receive a :class:`SuiteSpec` — the recipe (design, geometry,
schedule, extras) from which :func:`repro.retention.build_suite`
deterministically rebuilds the identical suite — plus the property
*names* they pull from the queue.  Results travel back as
:class:`RemoteResult`, a picklable projection of either engine's report
(verdict, failure points, timing, and a pre-rendered counterexample
trace for failing properties).  Verdicts are bit-identical to a serial
run by construction: every worker runs the same ``CheckSession``
decision procedures on the same rebuilt formulas — and with a
*cache_dir*, workers share the same persistent verdict cache, so a
warm parallel run skips clean cones exactly like a warm serial one.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import queue as _queue
import time as _time
import warnings
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .core.registry import engine_spec
from .core.session import CheckSession, PropertyOutcome, SessionReport
from .netlist import Circuit, cone_of_influence
from .obs.metrics import delta_metrics, merge_metrics
from .obs.trace import Tracer, set_tracer, tracer as _tracer
from .ste.formula import formula_nodes

__all__ = ["SuiteSpec", "RemoteFailure", "RemoteResult",
           "partition_by_cone", "run_parallel"]

#: Parent-side state inherited by fork()ed workers via copy-on-write:
#: (spec, session, {name: property}).  The parent stashes its
#: already-built suite and warmed CheckSession here just before
#: forking, so workers skip the rebuild and start from the parent's
#: interned formulas, compiled cone models, incremental SAT contexts
#: and portfolio race history.  Spawn-based platforms see None and
#: rebuild from the spec instead.
_FORK_STATE: Optional[Tuple["SuiteSpec", CheckSession, Dict]] = None

#: How many queue chunks to cut per worker: >1 gives the queue its
#: balancing slack (a worker that drew a cheap chunk pulls another),
#: while cone grouping inside each chunk keeps compilations amortised.
_CHUNKS_PER_WORKER = 2

#: design name -> repro.cpu factory (kept as names so a SuiteSpec
#: pickles as plain data).
_DESIGNS = ("fixed", "buggy", "full-retention", "no-retention")

_VARIANT_TO_DESIGN = {
    "selective-ifr": "fixed",
    "buggy-fetchreg": "buggy",
    "full-retention": "full-retention",
    "no-retention": "no-retention",
}


@dataclass(frozen=True)
class SuiteSpec:
    """A picklable recipe for rebuilding a property suite in a worker.

    Workers own their BDD managers and solvers, so what crosses the
    process boundary is not the suite but the deterministic recipe
    that :func:`repro.retention.build_suite` turns back into it.
    """

    design: str = "fixed"
    nregs: int = 2
    imem_depth: int = 2
    dmem_depth: int = 2
    sleep: bool = False
    include_extras: bool = False

    def __post_init__(self):
        if self.design not in _DESIGNS:
            raise ValueError(f"unknown design {self.design!r}; "
                             f"expected one of {_DESIGNS}")

    @classmethod
    def for_core(cls, core, properties: Sequence) -> "SuiteSpec":
        """Derive the spec that rebuilds *properties* on *core* —
        requires a core built by a :mod:`repro.cpu` factory and
        properties from :func:`~repro.retention.build_suite` (matched
        by name in the workers)."""
        cfg = core.config
        design = _VARIANT_TO_DESIGN.get(cfg.variant)
        if design is None:
            raise ValueError(
                f"core variant {cfg.variant!r} has no parallel factory; "
                f"rebuildable variants: {sorted(_VARIANT_TO_DESIGN)}")
        sleep = any(p.schedule.is_sleep for p in properties)
        extras = any(getattr(p, "unit", "") == "extra" for p in properties)
        return cls(design=design, nregs=cfg.nregs,
                   imem_depth=cfg.imem_depth, dmem_depth=cfg.dmem_depth,
                   sleep=sleep, include_extras=extras)

    def build(self):
        """(core, manager, suite) — executed inside each worker."""
        from .bdd import BDDManager
        from .cpu import (buggy_core, fixed_core, full_retention_core,
                          no_retention_core)
        from .retention import build_suite
        factory = {"fixed": fixed_core, "buggy": buggy_core,
                   "full-retention": full_retention_core,
                   "no-retention": no_retention_core}[self.design]
        core = factory(nregs=self.nregs, imem_depth=self.imem_depth,
                       dmem_depth=self.dmem_depth)
        mgr = BDDManager()
        suite = build_suite(core, mgr, sleep=self.sleep,
                            include_extras=self.include_extras)
        return core, mgr, suite


@dataclass(frozen=True)
class RemoteFailure:
    """One (time, node) violation point, stripped of engine objects."""

    time: int
    node: str


@dataclass
class RemoteResult:
    """A picklable projection of either engine's report — the
    :class:`~repro.engine.EngineReport` surface minus the live BDD /
    solver objects, which stay in the worker that produced them."""

    engine: str
    passed: bool
    vacuous: bool
    failures: List[RemoteFailure]
    depth: int
    checked_points: int
    elapsed_seconds: float
    #: pre-rendered ``format_trace`` output for a failing property
    #: (None when passed) — witnesses cannot travel, their traces can.
    cex_text: Optional[str] = None

    def summary(self) -> str:
        from .obs.report import render_result
        return render_result(self)


def _remote_result(result) -> RemoteResult:
    # Cache-served results already carry their rendered trace (and own
    # no extractable BDD/solver state); live failing results render
    # theirs here, inside the worker that owns the engine objects.
    from .ste.counterexample import cex_text_for
    cex_text = cex_text_for(result)
    return RemoteResult(
        engine=result.engine,
        passed=result.passed,
        vacuous=result.vacuous,
        failures=[RemoteFailure(f.time, f.node) for f in result.failures],
        depth=result.depth,
        checked_points=getattr(result, "checked_points", 0),
        elapsed_seconds=result.elapsed_seconds,
        cex_text=cex_text,
    )


def _report_delta(end: SessionReport, base: Optional[SessionReport]
                  ) -> Dict:
    """This worker's contribution: *end* minus the state the session
    had when the worker started (None = fresh session).  Counters are
    subtracted; gauges (node counts, table sizes) keep their end
    values; outcomes keep only the newly checked suffix."""
    skip = len(base.outcomes) if base is not None else 0
    outcomes = [PropertyOutcome(
        name=o.name,
        result=_remote_result(o.result),
        cone_nodes=o.cone_nodes,
        reused_model=o.reused_model,
        engine=o.engine,
        cached=o.cached) for o in end.outcomes[skip:]]
    engine_stats = dict(end.engine_stats)
    cache_stats = {op: dict(counts)
                   for op, counts in end.cache_stats.items()}
    models_compiled = end.models_compiled
    model_reuses = end.model_reuses
    bdd_stats = dict(end.bdd_stats)
    pcache = {"cache_hits": end.cache_hits,
              "cache_misses": end.cache_misses,
              "cache_stored": end.cache_stored}
    if base is not None:
        models_compiled -= base.models_compiled
        model_reuses -= base.model_reuses
        pcache["cache_hits"] -= base.cache_hits
        pcache["cache_misses"] -= base.cache_misses
        pcache["cache_stored"] -= base.cache_stored
        for k, v in base.engine_stats.items():
            if k != "max_learnt_len":
                engine_stats[k] = engine_stats.get(k, 0) - v
        for op, counts in base.cache_stats.items():
            slot = cache_stats.get(op)
            if slot is not None:
                for k in ("hits", "misses"):
                    slot[k] = slot.get(k, 0) - counts.get(k, 0)
        # Gauges too: a fork-COW worker inherits the parent's whole
        # manager, so its absolute node/table counts re-count the
        # inherited state; reporting growth keeps the merged sums from
        # counting the parent (workers+1) times over.
        for k, v in base.bdd_stats.items():
            bdd_stats[k] = bdd_stats.get(k, 0) - v
    # Runtime metrics follow the same fork-COW discipline: a forked
    # worker's registry inherits the parent's counts, so only the
    # growth travels home (extrema keep their end values).
    obs_metrics = delta_metrics(
        end.obs_metrics, base.obs_metrics if base is not None else None)
    return {
        "outcomes": outcomes,
        "models_compiled": models_compiled,
        "model_reuses": model_reuses,
        "bdd_stats": bdd_stats,
        "cache_stats": cache_stats,
        "engine_stats": engine_stats,
        "obs_metrics": obs_metrics,
        **pcache,
    }


def _resume_or_build(spec: SuiteSpec, engine: str,
                     cache_dir: Optional[str], rerun: str):
    """(session, {name: property}, base report) for one worker: the
    parent's fork-COW stash when available, a spec rebuild otherwise."""
    state = _FORK_STATE
    if state is not None and state[0] == spec:
        _, session, by_name = state
        if session.cache is not None:
            # The sqlite connection crossed the fork(); a shared file
            # descriptor between parent and children corrupts the
            # database, so every process reopens its own.
            from .core.cache import VerdictCache
            session.cache = VerdictCache(session.cache.directory)
        return session, by_name, session.report()
    core, mgr, suite = spec.build()
    by_name = {p.name: p for p in suite}
    session = CheckSession(core.circuit, mgr, engine=engine,
                           cache=cache_dir, rerun=rerun)
    return session, by_name, None


def _check_names(session: CheckSession, by_name: Dict,
                 names: Sequence[str]) -> None:
    unknown = sorted(set(names) - set(by_name))
    if unknown:
        raise ValueError(
            f"unknown properties {', '.join(unknown)}; "
            f"valid names: {', '.join(sorted(by_name))}")
    for name in names:
        prop = by_name[name]
        session.check(prop.antecedent, prop.consequent, name=name)


def _run_partition(spec: SuiteSpec, names: Sequence[str], engine: str,
                   cache_dir: Optional[str] = None,
                   rerun: str = "dirty") -> Dict:
    """Single-partition worker entry point (the degenerate in-process
    path): check the named properties through one CheckSession and
    return picklable outcomes plus the worker's aggregate statistics."""
    session, by_name, base = _resume_or_build(spec, engine, cache_dir,
                                              rerun)
    try:
        _check_names(session, by_name, names)
        return _report_delta(session.report(), base)
    finally:
        session.close()


def _worker_loop(task_queue, result_queue, spec: SuiteSpec, engine: str,
                 cache_dir: Optional[str], rerun: str,
                 trace_on: bool = False) -> None:
    """Queue-draining worker: pull cone chunks until the sentinel, then
    ship one aggregate delta report back.

    A fork()ed worker resumes the parent's stashed session (private
    copy-on-write copy — compiled models, interned CNF, race history
    and all); otherwise the suite is rebuilt from the spec.  The
    worker's *session* persists across every chunk it steals, so cone
    amortisation is bounded by which chunks it happens to pull, not by
    a static assignment.

    With *trace_on* the worker installs its own enabled
    :class:`~repro.obs.trace.Tracer` (a fork-inherited parent tracer
    would interleave timelines) and ships its spans home inside the
    result payload, together with its wall-clock epoch so the parent
    can re-base them onto one timeline — each worker then renders as
    its own pid lane in the exported trace."""
    session = None
    wtracer = None
    if trace_on:
        wtracer = Tracer(enabled=True)
        set_tracer(wtracer)
    try:
        session, by_name, base = _resume_or_build(spec, engine,
                                                  cache_dir, rerun)
        idle_s = 0.0
        chunks_done = 0
        while True:
            t0 = _time.perf_counter()
            names = task_queue.get()
            idle_s += _time.perf_counter() - t0
            if names is None:
                break
            with _tracer().span("parallel.chunk", cat="parallel",
                                size=len(names), first=names[0]):
                _check_names(session, by_name, names)
            chunks_done += 1
        session.metrics.inc("parallel.worker.idle_s", round(idle_s, 6))
        session.metrics.inc("parallel.worker.chunks", chunks_done)
        payload = _report_delta(session.report(), base)
        if wtracer is not None:
            payload["spans"] = wtracer.export()
            payload["trace_epoch_wall"] = wtracer.epoch_wall
        result_queue.put(("ok", payload))
    except BaseException as exc:             # ship the failure home
        try:
            result_queue.put(("error", exc))
        except Exception:                    # unpicklable exception
            result_queue.put(("error", RuntimeError(
                f"worker failed with unpicklable "
                f"{type(exc).__name__}: {exc}")))
    finally:
        if session is not None:
            session.close()


def partition_by_cone(circuit: Circuit, properties: Sequence,
                      jobs: int) -> List[List[str]]:
    """Bin-pack the properties over *jobs* slots, keeping cone groups
    together as far as balance allows.

    Properties sharing a cone of influence are assigned contiguously,
    so a worker compiles each cone it owns once — the process-level
    analogue of the session's cone-keyed model cache.  A group larger
    than the ideal per-slot share (the paper's suites concentrate
    24 of 26 properties on one core-wide cone) is *split* across
    slots: each of those slots pays one compile of the shared cone,
    which is what buys the wall-clock parallelism.  Groups are placed
    largest-first onto the least-loaded bin (load = property count);
    empty bins are dropped.

    :func:`run_parallel` cuts more slots than workers and feeds the
    resulting chunks through a shared queue, so these bins are the
    *unit of stealing*, not a static worker assignment.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    groups: Dict[FrozenSet[str], List[str]] = {}
    key_of_roots: Dict[FrozenSet[str], FrozenSet[str]] = {}
    order: List[FrozenSet[str]] = []
    for prop in properties:
        roots = frozenset(formula_nodes(prop.antecedent)) | frozenset(
            formula_nodes(prop.consequent))
        key = key_of_roots.get(roots)
        if key is None:
            cone = cone_of_influence(circuit, sorted(roots))
            key = frozenset(cone.inputs) | frozenset(cone.gates) \
                | frozenset(cone.registers)
            key_of_roots[roots] = key
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(prop.name)
    bins: List[List[str]] = [[] for _ in range(jobs)]
    loads = [0] * jobs
    target = -(-len(properties) // jobs)     # ceil: ideal bin size
    # Deterministic: sort by (-size, first name) so ties break stably.
    for key in sorted(order, key=lambda k: (-len(groups[k]),
                                            groups[k][0])):
        names = groups[key]
        i = 0
        while i < len(names):
            b = loads.index(min(loads))
            room = max(1, target - loads[b])
            chunk = names[i:i + room]
            bins[b].extend(chunk)
            loads[b] += len(chunk)
            i += room
    return [b for b in bins if b]


def _ordered_chunks(circuit: Circuit, properties: Sequence,
                    workers: int,
                    cache_dir: Optional[str]) -> List[List[str]]:
    """Queue chunks, most expensive first.

    The cost model is the persistent cache's recorded per-property
    wall times (:meth:`~repro.core.cache.VerdictCache.costs_by_name`);
    unknown properties cost one unit.  Longest-processing-time-first
    ordering is what makes the shared queue balance: the expensive
    cone chunks start immediately and the cheap tail backfills idle
    workers."""
    chunks = partition_by_cone(circuit, properties,
                               workers * _CHUNKS_PER_WORKER)
    costs: Dict[str, float] = {}
    if cache_dir is not None:
        from .core.cache import VerdictCache
        try:
            with VerdictCache(cache_dir) as cache:
                costs = cache.costs_by_name([p.name for p in properties])
        except Exception:
            costs = {}                       # cost model is best-effort
    def chunk_cost(chunk: List[str]) -> float:
        return sum(costs.get(name, 1.0) for name in chunk)
    return sorted(chunks, key=lambda c: (-chunk_cost(c), c[0]))


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:                   # non-Linux
        return os.cpu_count() or 1


def run_parallel(core, properties: Sequence, *, jobs: int,
                 engine: str = "portfolio",
                 spec: Optional[SuiteSpec] = None,
                 oversubscribe: bool = False,
                 mgr=None,
                 cache_dir: Optional[str] = None,
                 rerun: str = "dirty") -> SessionReport:
    """Check *properties* against *core* across up to *jobs* worker
    processes pulling from a shared work queue; returns one merged
    :class:`SessionReport`.

    *engine* is any registered engine name and applies inside every
    worker ("portfolio" races both backends per property there).
    *spec* overrides the worker rebuild recipe; by default it is
    derived from the core's config and the properties (which must
    therefore come from :func:`~repro.retention.build_suite`).
    Outcome order matches the input property order, so
    ``report.verdicts()`` is directly comparable with a serial run's.
    *cache_dir*/*rerun* attach the persistent verdict cache inside
    every worker (and the parent's pilot session), so warm parallel
    runs skip clean cones and the queue orders chunks by recorded
    cost.

    Worker count is capped at the CPUs actually available unless
    *oversubscribe* is set (a warning reports the clamp, and
    ``SessionReport.jobs`` always records the *effective* worker
    count): splitting a suite across more processes than cores
    forfeits the suite-level cache amortisation both engines depend on
    and makes every worker slower — on one core the whole run degrades
    to a single in-process session, which is the fastest configuration
    that machine can execute.  Pass *mgr* (the manager the property
    formulas were built on) to let that degenerate path check the
    caller's suite directly instead of rebuilding it from the spec.

    On fork-capable platforms the parent first checks one *pilot*
    property per cone (which also settles the portfolio's per-cone
    winner), then forks: workers inherit the parent's warmed state —
    interned formulas, compiled cone models, BDD computed tables, SAT
    contexts, race history — by copy-on-write instead of rebuilding.
    """
    global _FORK_STATE
    engine_spec(engine)
    properties = list(properties)
    names = [p.name for p in properties]
    if len(set(names)) != len(names):
        raise ValueError("parallel runs address properties by name; "
                         "the suite contains duplicates")
    if spec is None:
        spec = SuiteSpec.for_core(core, properties)
    started = _time.perf_counter()
    if oversubscribe:
        workers = jobs
    else:
        workers = max(1, min(jobs, _available_cpus()))
        if workers < jobs:
            warnings.warn(
                f"run_parallel: clamping jobs={jobs} to the {workers} "
                f"available CPU(s); bench numbers from this run measure "
                f"{workers} effective worker(s) (SessionReport.jobs "
                f"records it). Pass oversubscribe=True to force.",
                RuntimeWarning, stacklevel=2)
    chunks = _ordered_chunks(core.circuit, properties, workers,
                             cache_dir)
    effective_jobs = 1

    worker_reports: List[Dict] = []
    if workers <= 1 or len(chunks) <= 1:
        # Degenerate fan-out: run everything in-process.  With the
        # caller's manager (the one the property formulas were built
        # on) the caller's suite is checked directly; without it the
        # properties' BDD constraints are unreadable here, so the run
        # rebuilds from the spec like any worker would.
        if mgr is not None:
            session = CheckSession(core.circuit, mgr, engine=engine,
                                   cache=cache_dir, rerun=rerun)
            try:
                for prop in properties:
                    session.check(prop.antecedent, prop.consequent,
                                  name=prop.name)
                worker_reports.append(
                    _report_delta(session.report(), None))
            finally:
                session.close()
        else:
            worker_reports.append(_run_partition(spec, names, engine,
                                                 cache_dir, rerun))
    else:
        ctx = _mp_context()
        pilot_names: List[str] = []
        pilot_session: Optional[CheckSession] = None
        if ctx.get_start_method() == "fork":
            # Pilot + stash: warm one property per cone in the parent,
            # hand the warmed session to the workers through fork COW.
            with _tracer().span("parallel.pilot", cat="parallel") as span:
                p_core, p_mgr, p_suite = spec.build()
                by_name = {p.name: p for p in p_suite}
                session = pilot_session = CheckSession(
                    p_core.circuit, p_mgr, engine=engine,
                    cache=cache_dir, rerun=rerun)
                seen_first: Dict[frozenset, str] = {}
                for chunk in chunks:
                    pilot = chunk[0]
                    prop = by_name.get(pilot)
                    if prop is None:
                        continue             # unknown: workers report it
                    roots = frozenset(formula_nodes(prop.antecedent)) \
                        | frozenset(formula_nodes(prop.consequent))
                    if roots not in seen_first:
                        seen_first[roots] = pilot
                pilot_names = sorted(set(seen_first.values()),
                                     key=names.index)
                span.set("pilots", len(pilot_names))
                for pilot in pilot_names:
                    prop = by_name[pilot]
                    session.check(prop.antecedent, prop.consequent,
                                  name=pilot)
            worker_reports.append(_report_delta(session.report(), None))
            _FORK_STATE = (spec, session, by_name)
            chunks = [[n for n in chunk if n not in pilot_names]
                      for chunk in chunks]
            chunks = [chunk for chunk in chunks if chunk]
            if not chunks:
                # Every property was a pilot: the parent did all the
                # work and no worker pool is needed.
                _FORK_STATE = None
        try:
            if chunks:
                nproc = min(workers, len(chunks))
                effective_jobs = nproc
                with _tracer().span("parallel.fanout", cat="parallel",
                                    workers=nproc,
                                    chunks=len(chunks)) as span:
                    task_queue = ctx.Queue()
                    result_queue = ctx.Queue()
                    for chunk in chunks:
                        task_queue.put(chunk)
                    for _ in range(nproc):
                        task_queue.put(None)  # one sentinel per worker
                    # Freeze the warmed heap before forking (the
                    # CPython-documented pattern): the BDD tables are
                    # millions of long-lived objects, and moving them
                    # to the permanent generation keeps the children's
                    # cyclic-GC passes from touching — and
                    # copy-on-write duplicating — those pages.
                    gc.collect()
                    gc.freeze()
                    trace_on = _tracer().enabled
                    procs = [ctx.Process(target=_worker_loop,
                                         args=(task_queue, result_queue,
                                               spec, engine, cache_dir,
                                               rerun, trace_on),
                                         daemon=True)
                             for _ in range(nproc)]
                    for proc in procs:
                        proc.start()
                    error: Optional[BaseException] = None
                    pending = nproc
                    while pending:
                        # A worker killed mid-check (OOM, segfault in a
                        # giant BDD workload) never posts its result;
                        # poll liveness so the run fails loudly instead
                        # of blocking on the queue forever.
                        try:
                            status, payload = result_queue.get(
                                timeout=1.0)
                        except _queue.Empty:
                            if any(p.is_alive() for p in procs):
                                continue
                            try:
                                status, payload = \
                                    result_queue.get_nowait()
                            except _queue.Empty:
                                raise RuntimeError(
                                    f"{pending} parallel worker(s) "
                                    f"died without reporting a result "
                                    f"(exit codes: "
                                    f"{[p.exitcode for p in procs]})")
                        pending -= 1
                        if status == "ok":
                            # Worker spans ride home in the payload;
                            # re-base them onto the parent timeline so
                            # each worker renders as its own pid lane.
                            spans = payload.pop("spans", None)
                            epoch = payload.pop("trace_epoch_wall",
                                                None)
                            if spans:
                                _tracer().absorb(spans, epoch)
                            worker_reports.append(payload)
                        else:
                            error = error or payload
                    for proc in procs:
                        proc.join()
                    span.set("ok", error is None)
                    if error is not None:
                        raise error
        finally:
            _FORK_STATE = None
            gc.unfreeze()
            if pilot_session is not None:
                pilot_session.close()

    by_name_out: Dict[str, PropertyOutcome] = {}
    models_compiled = 0
    model_reuses = 0
    bdd_stats: Dict[str, int] = {}
    cache_stats: Dict[str, Dict[str, int]] = {}
    engine_stats: Dict[str, int] = {}
    obs_metrics: Dict[str, float] = {}
    pcache = {"cache_hits": 0, "cache_misses": 0, "cache_stored": 0}
    for report in worker_reports:
        for outcome in report["outcomes"]:
            by_name_out[outcome.name] = outcome
        models_compiled += report["models_compiled"]
        model_reuses += report["model_reuses"]
        for k in pcache:
            pcache[k] += report.get(k, 0)
        for k, v in report["bdd_stats"].items():
            bdd_stats[k] = bdd_stats.get(k, 0) + v
        for op, counts in report["cache_stats"].items():
            slot = cache_stats.setdefault(
                op, {"hits": 0, "misses": 0, "entries": 0})
            for k, v in counts.items():
                slot[k] = slot.get(k, 0) + v
        for k, v in report["engine_stats"].items():
            if k == "max_learnt_len":
                engine_stats[k] = max(engine_stats.get(k, 0), v)
            else:
                engine_stats[k] = engine_stats.get(k, 0) + v
        merge_metrics(obs_metrics, report.get("obs_metrics", {}))

    outcomes = [by_name_out[p.name] for p in properties]
    return SessionReport(
        outcomes=outcomes,
        elapsed_seconds=_time.perf_counter() - started,
        models_compiled=models_compiled,
        model_reuses=model_reuses,
        bdd_stats=bdd_stats,
        cache_stats=cache_stats,
        engine=engine,
        engine_stats=engine_stats,
        jobs=max(1, effective_jobs),
        obs_metrics=obs_metrics,
        **pcache)
