"""Result tables for the benchmark harness.

Small, dependency-free tabulation: benches print the same rows the
paper reports (per-unit property counts and outcomes, timing, BDD
sizes, area/leakage sweeps) in aligned ASCII, and EXPERIMENTS.md embeds
the rendered output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["Table", "format_seconds"]


class Table:
    """An ordered column table with ASCII rendering."""

    def __init__(self, columns: Sequence[str], title: str = ""):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add(self, *values: object, **named: object) -> None:
        if values and named:
            raise ValueError("pass either positional or named cells")
        if named:
            values = tuple(named.get(c, "") for c in self.columns)
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"
