"""The experiment registry: every paper artefact, indexed.

Maps each experiment id of DESIGN.md §3 (E1 … E12) to its description,
the paper's reported figure/number, and the bench that regenerates it.
`registry()` is consumed by the benchmark harness for labelling and by
EXPERIMENTS.md generation; `paper_claims()` centralises the expected
*shapes* so benches can assert them programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Experiment", "registry", "paper_claims"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible artefact of the paper."""

    id: str
    paper_artifact: str
    description: str
    bench: str
    expected_shape: str


_EXPERIMENTS: List[Experiment] = [
    Experiment(
        "E1", "Fig. 1",
        "Emulated retention register: sample/hold modes, retention "
        "priority over reset",
        "benchmarks/test_bench_retention_cell.py",
        "all mode properties prove; hold-beats-reset is a theorem"),
    Experiment(
        "E2", "Fig. 2",
        "The retention commutation diamond: present -> sleep -> resume "
        "-> next equals present -> next",
        "benchmarks/test_bench_commutation.py",
        "Property I next state == Property II post-resume next state"),
    Experiment(
        "E3", "Fig. 3",
        "Sleep/resume waveforms over clock, NRET, NRST and the state",
        "examples/sleep_resume_waveforms.py",
        "clock stops, NRET drops, NRST pulses, reverse order on resume"),
    Experiment(
        "E4", "Fig. 4",
        "The 32-bit RISC core with selective retention and the IFR",
        "examples/run_program.py",
        "gate-level core executes programs; BLIF round-trip preserved"),
    Experiment(
        "E5", "§III-B '26 properties'",
        "Property I suite: 26 properties split 2/6/11/6/1 across "
        "fetch/decode/control/execute/write-back",
        "benchmarks/test_bench_property1_suite.py",
        "all 26 pass on the fixed design with NRET held high"),
    Experiment(
        "E6", "§III-B Property II",
        "The same 26 properties with sleep and resume operations",
        "benchmarks/test_bench_property2_suite.py",
        "all pass on the fixed selective-retention design"),
    Experiment(
        "E7", "§III-B control-unit discovery",
        "Without the IFR the control unit malfunctions after resume; "
        "the 6-bit IFR fixes it",
        "benchmarks/test_bench_ifr_bugfix.py",
        "buggy variant: counterexample; fixed variant: theorem"),
    Experiment(
        "E8", "§III-B listed property, '10.83 s'",
        "The instruction-memory + IFR Property II instance on the "
        "256x32 memory",
        "benchmarks/test_bench_memory_ifr.py",
        "passes; the most expensive property of the suite"),
    Experiment(
        "E9", "§III-B symbolic indexing",
        "Memory verification cost: direct (linear) vs symbolically "
        "indexed (logarithmic)",
        "benchmarks/test_bench_symbolic_indexing.py",
        "indexed BDD size ~log(depth); direct ~linear(depth)"),
    Experiment(
        "E10", "§I motivation",
        "Conventional exhaustive simulation vs one symbolic run",
        "benchmarks/test_bench_scalar_vs_symbolic.py",
        "exhaustive run count doubles per state bit; STE stays one run"),
    Experiment(
        "E11", "§IV area/power claims",
        "Selective vs full retention area and leakage for 3/5/7-stage "
        "generations; 25-40% retention flop overhead",
        "benchmarks/test_bench_area_power.py",
        "architectural state flat, micro-architectural ~doubles; "
        "selective savings grow with pipeline depth"),
    Experiment(
        "E12", "§III-B decomposition",
        "Property decomposition via STE inference rules",
        "benchmarks/test_bench_decomposition.py",
        "decomposed per-unit checks cheaper than a monolithic check; "
        "composition rules rebuild the end-to-end theorem"),
    Experiment(
        "E13", "§III-B suite engineering (beyond the paper)",
        "Batched property sessions: CheckSession validates and compiles "
        "the circuit once, shares cone models across the 26 properties, "
        "and reports suite-level BDD statistics",
        "benchmarks/test_bench_session.py",
        "session verdicts identical to per-property checks; fewer "
        "models compiled than properties; wall-clock no worse"),
    Experiment(
        "E14", "beyond the paper (multi-backend)",
        "SAT/BMC second verification engine: the property suites "
        "decided by a Tseitin-compiled defining trajectory + CDCL "
        "behind CheckSession(engine='bmc'), verdict-identical to STE",
        "benchmarks/test_bench_engines.py",
        "BMC verdicts == STE verdicts on all 26 properties (both "
        "schedules); SAT counterexamples render through the same "
        "waveform path"),
    Experiment(
        "E15", "beyond the paper (parallel portfolio)",
        "Parallel portfolio checking: engine racing per cone "
        "(CheckSession(engine='portfolio')), multiprocess suite "
        "fan-out (run_suite_session(jobs=N)) and incremental BMC "
        "frame reuse, measured as a scaling curve against the serial "
        "engines",
        "benchmarks/test_bench_parallel.py",
        "portfolio/jobs verdicts identical to serial STE; >= 1.5x "
        "wall-clock speedup over the serial BMC engine on the deep-"
        "imem suite; frame reuse ablation recorded"),
    Experiment(
        "E16", "beyond the paper (incremental re-check)",
        "Persistent verdict caching and incremental re-check after "
        "circuit edits: the repro.core fingerprint/cache layer serves "
        "warm re-runs from disk and scopes post-edit re-checking to "
        "the dirty cones",
        "benchmarks/test_bench_incremental.py",
        "warm re-run of an unchanged Property II suite >= 5x faster "
        "than cold; a one-cone edit re-decides only that cone's "
        "properties; verdicts bit-identical to cold serial STE in "
        "both cases"),
]


def registry() -> Dict[str, Experiment]:
    return {e.id: e for e in _EXPERIMENTS}


def paper_claims() -> Dict[str, object]:
    """The paper's concrete numbers, for paper-vs-measured reporting."""
    return {
        "property_counts": {"fetch": 2, "decode": 6, "control": 11,
                            "execute": 6, "writeback": 1},
        "total_properties": 26,
        "max_property_seconds_paper": 10.83,
        "paper_machine": "Intel Centrino 1.7 GHz, 2 GB RAM, Linux in a VM",
        "memory_geometry": (256, 32),
        "retention_area_overhead_range": (0.25, 0.40),
        "uarch_growth_per_generation": 2.0,
        "generations": (3, 5, 7),
    }
