"""Experiment registry and result-table utilities for the benchmarks."""

from .experiments import Experiment, paper_claims, registry
from .report import Table, format_seconds

__all__ = ["Experiment", "paper_claims", "registry", "Table",
           "format_seconds"]
