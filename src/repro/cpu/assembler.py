"""A small assembler for the core's ISA subset.

Lets examples and tests write programs readably::

    program = assemble('''
        add  r3, r1, r2
        lw   r4, 8(r3)
        beq  r4, r1, done
        sw   r4, 12(r3)
    done:
        or   r5, r4, r1
    ''')

Syntax: one instruction per line, ``#`` comments, ``label:`` on its own
line or before an instruction, registers ``r0``–``r31``, decimal or
``0x`` immediates, MIPS-style ``offset(base)`` memory operands, branch
targets as labels or immediate word offsets.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .isa import (Instruction, OP_BEQ, OP_LW, OP_RTYPE, OP_SW,
                  FUNCT_ADD, FUNCT_AND, FUNCT_OR, FUNCT_SLT, FUNCT_SUB,
                  encode)

__all__ = ["assemble", "assemble_to_instructions", "AssemblerError", "NOP"]


class AssemblerError(Exception):
    """Syntax or semantic error in assembly source."""


_RTYPE_FUNCTS = {
    "add": FUNCT_ADD,
    "sub": FUNCT_SUB,
    "and": FUNCT_AND,
    "or": FUNCT_OR,
    "slt": FUNCT_SLT,
}

_MEM_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\((r\d+)\)$")

#: A do-nothing instruction in the resume-safe encoding: ``and r0,r0,r0``
#: (the fetch-bubble opcode 0 is reserved for hardware, not programs).
NOP = Instruction(opcode=OP_RTYPE, rs=0, rt=0, rd=0, funct=FUNCT_AND)


def _reg(token: str, line_no: int) -> int:
    if not token.startswith("r"):
        raise AssemblerError(f"line {line_no}: expected register, got {token!r}")
    try:
        index = int(token[1:])
    except ValueError:
        raise AssemblerError(
            f"line {line_no}: bad register {token!r}") from None
    if not 0 <= index < 32:
        raise AssemblerError(f"line {line_no}: register {token!r} out of range")
    return index


def _imm(token: str, line_no: int) -> int:
    try:
        value = int(token, 0)
    except ValueError:
        raise AssemblerError(
            f"line {line_no}: bad immediate {token!r}") from None
    if not -(1 << 15) <= value < (1 << 16):
        raise AssemblerError(f"line {line_no}: immediate {value} out of range")
    return value & 0xFFFF


def assemble_to_instructions(source: str,
                             rtype_opcode: int = OP_RTYPE
                             ) -> List[Instruction]:
    """Two-pass assembly to :class:`Instruction` objects."""
    # Pass 1: strip, split labels, record addresses (word-indexed).
    labels: Dict[str, int] = {}
    pending: List[Tuple[int, str, List[str]]] = []  # (line_no, mnemonic, ops)
    address = 0
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        while line:
            if ":" in line.split()[0] or line.endswith(":"):
                label, _, rest = line.partition(":")
                label = label.strip()
                if not label.isidentifier():
                    raise AssemblerError(
                        f"line {line_no}: bad label {label!r}")
                if label in labels:
                    raise AssemblerError(
                        f"line {line_no}: duplicate label {label!r}")
                labels[label] = address
                line = rest.strip()
                continue
            parts = line.replace(",", " ").split()
            pending.append((line_no, parts[0].lower(), parts[1:]))
            address += 1
            line = ""

    # Pass 2: encode.
    out: List[Instruction] = []
    for index, (line_no, mnemonic, ops) in enumerate(pending):
        out.append(_encode_one(line_no, mnemonic, ops, index, labels,
                               rtype_opcode))
    return out


def assemble(source: str, rtype_opcode: int = OP_RTYPE) -> List[int]:
    """Assemble to 32-bit machine words."""
    return [encode(i) for i in assemble_to_instructions(source, rtype_opcode)]


def _encode_one(line_no: int, mnemonic: str, ops: List[str], index: int,
                labels: Dict[str, int], rtype_opcode: int) -> Instruction:
    if mnemonic == "nop":
        if ops:
            raise AssemblerError(f"line {line_no}: nop takes no operands")
        return Instruction(opcode=rtype_opcode, funct=FUNCT_AND)

    if mnemonic in _RTYPE_FUNCTS:
        if len(ops) != 3:
            raise AssemblerError(
                f"line {line_no}: {mnemonic} needs rd, rs, rt")
        rd, rs, rt = (_reg(t, line_no) for t in ops)
        return Instruction(opcode=rtype_opcode, rs=rs, rt=rt, rd=rd,
                           funct=_RTYPE_FUNCTS[mnemonic])

    if mnemonic in ("lw", "sw"):
        if len(ops) != 2:
            raise AssemblerError(
                f"line {line_no}: {mnemonic} needs rt, offset(base)")
        rt = _reg(ops[0], line_no)
        match = _MEM_RE.match(ops[1])
        if not match:
            raise AssemblerError(
                f"line {line_no}: bad memory operand {ops[1]!r}")
        offset, base = match.groups()
        return Instruction(opcode=OP_LW if mnemonic == "lw" else OP_SW,
                           rs=_reg(base, line_no), rt=rt,
                           imm=_imm(offset, line_no))

    if mnemonic == "beq":
        if len(ops) != 3:
            raise AssemblerError(f"line {line_no}: beq needs rs, rt, target")
        rs = _reg(ops[0], line_no)
        rt = _reg(ops[1], line_no)
        target = ops[2]
        if target in labels:
            # PC-relative: offset from the instruction after the branch.
            offset = labels[target] - (index + 1)
        else:
            offset = int(_imm(target, line_no))
            if offset & 0x8000:
                offset -= 1 << 16
        if not -(1 << 15) <= offset < (1 << 15):
            raise AssemblerError(f"line {line_no}: branch offset too far")
        return Instruction(opcode=OP_BEQ, rs=rs, rt=rt, imm=offset & 0xFFFF)

    raise AssemblerError(f"line {line_no}: unknown mnemonic {mnemonic!r}")
