"""Micro-architectural state inventories for 3/5/7-stage pipelines.

The paper's conclusion quantifies *why* selective retention matters:

    "For a 3-stage, 5-stage and 7-stage CPU the programmers visible
    'architectural state' is basically the same but the
    micro-architectural state roughly doubles every generation as more
    complex write buffering, branch prediction and address
    translation/virtual memory structures grow … retention registers
    may be 25-40 % larger area per flop."

This module builds the state inventories behind that claim: a
:class:`StateInventory` lists every register group of a design
generation, classified architectural vs micro-architectural, with bit
counts derived from the structures each generation adds (pipeline
registers, write buffers, branch predictors, TLBs, cache tag/state
bits).  The power/area model in :mod:`repro.retention.power` consumes
these inventories to reproduce experiment E11.

The concrete per-structure sizes are engineering estimates for a
classic ARM9/ARM11-class 32-bit embedded core; what the experiment
needs (and what the paper claims) is the *shape*: flat architectural
state, roughly doubling micro-architectural state per generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["RegisterGroup", "StateInventory", "generation_inventory",
           "GENERATIONS", "core_inventory"]

GENERATIONS = (3, 5, 7)


@dataclass(frozen=True)
class RegisterGroup:
    """A named group of flops with a retention classification."""

    name: str
    bits: int
    architectural: bool

    def __post_init__(self):
        if self.bits <= 0:
            raise ValueError(f"group {self.name!r} has no bits")


@dataclass
class StateInventory:
    """Every register group of one design, with classification."""

    name: str
    groups: List[RegisterGroup] = field(default_factory=list)

    def add(self, name: str, bits: int, architectural: bool) -> None:
        self.groups.append(RegisterGroup(name, bits, architectural))

    @property
    def architectural_bits(self) -> int:
        return sum(g.bits for g in self.groups if g.architectural)

    @property
    def microarchitectural_bits(self) -> int:
        return sum(g.bits for g in self.groups if not g.architectural)

    @property
    def total_bits(self) -> int:
        return self.architectural_bits + self.microarchitectural_bits

    def summary(self) -> Dict[str, int]:
        return {
            "architectural": self.architectural_bits,
            "microarchitectural": self.microarchitectural_bits,
            "total": self.total_bits,
        }


def generation_inventory(stages: int) -> StateInventory:
    """The state inventory of a *stages*-deep pipeline generation.

    Architectural state (constant across generations): 16 general
    registers + banked/status registers and the kernel-level
    configuration state the paper insists must be retained (MMU/system
    control programming).
    """
    if stages not in GENERATIONS:
        raise ValueError(f"modelled generations are {GENERATIONS}")
    inv = StateInventory(f"{stages}-stage")

    # -- architectural (identical across generations) -------------------
    inv.add("general_registers", 16 * 32, True)          # r0-r15
    inv.add("banked_registers", 20 * 32, True)           # mode banks
    inv.add("status_registers", 6 * 32, True)            # CPSR/SPSRs
    inv.add("system_control", 24 * 32, True)             # CP15-style config

    # -- micro-architectural (grows with the generation) ----------------
    # Flop-only inventory: SRAM-array bits (cache data/tag RAM macros)
    # are excluded — they are not candidates for retention *registers*.
    # Pipeline registers carry roughly one instruction's worth of
    # datapath state per stage boundary.
    inv.add("pipeline_registers", (stages - 1) * 144, False)
    if stages == 3:
        inv.add("fetch_buffers", 128, False)
        inv.add("load_store_staging", 96, False)
        inv.add("branch_target_cache", 512, False)
    if stages == 5:
        inv.add("fetch_buffers", 192, False)
        inv.add("load_store_staging", 128, False)
        inv.add("write_buffer", 4 * (32 + 32 + 4), False)   # addr+data+ctl
        inv.add("branch_predictor_bimodal", 256 * 2, False)
        inv.add("tlb_micro", 8 * (20 + 20 + 8), False)
    if stages == 7:
        inv.add("prefetch_queue", 384, False)
        inv.add("load_store_staging", 192, False)
        inv.add("write_buffer_deep", 8 * (32 + 32 + 4), False)
        inv.add("branch_predictor_gshare", 1024, False)
        inv.add("btb", 64 * 10, False)
        inv.add("return_stack", 8 * 30, False)
        inv.add("tlb_main", 8 * (20 + 20 + 8), False)
    return inv


def core_inventory(nregs: int, imem_depth: int, dmem_depth: int,
                   ifr_bits: int = 6, word: int = 32) -> StateInventory:
    """The inventory of our gate-level Fig. 4 core (for cross-checking
    the analytical model against the real netlist)."""
    inv = StateInventory("risc32-single-cycle")
    inv.add("pc", word, True)
    inv.add("register_bank", nregs * word, True)
    inv.add("instruction_memory", imem_depth * word, True)
    inv.add("data_memory", dmem_depth * word, True)
    inv.add("ifr", ifr_bits, False)
    return inv
