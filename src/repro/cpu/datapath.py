"""The 32-bit single-cycle RISC core of Fig. 4, gate level.

`build_core` elaborates the complete datapath — PC, instruction
memory, register bank, ALU + ALU control, main control, data memory,
sign-extend, the two branch adders, and the instruction-fetch register
— with the retention scheme selected by :class:`RiscConfig`:

==================  ====================================================
variant             meaning
==================  ====================================================
``selective-ifr``   the paper's *fixed* design: architectural state (PC,
                    register bank, both memories) in retention registers;
                    a plain 6-bit IFR between ``Instruction[31:26]`` and
                    the control unit; resume-safe ``bubble0`` decode.
``buggy-fetchreg``  the reconstructed *pre-fix* design: a synthesized-RAM
                    style registered read port (plain, resettable) holds
                    the whole fetched instruction; standard ``mips0``
                    decode where opcode 0 is live R-format.  Correct in
                    normal operation — broken across sleep/resume.
``registered-       ablation of the fix: the same wide registered fetch
fetch-safe``        path as the buggy design but with the resume-safe
                    ``bubble0`` decode.  Verifies — showing the essential
                    repair is the safe reset decode + reload protocol;
                    the paper's 6-bit IFR is the area-optimal form of it.
``full-retention``  every register, including the IFR, is a retention
                    register (the expensive baseline).
``no-retention``    no retention anywhere (state dies on power-down).
==================  ====================================================

Clocking: STE steps are phases; architectural registers load on rising
edges, the IFR / fetch register captures on *falling* edges (mid-cycle),
which keeps the registered opcode aligned with the combinationally
fetched fields.  One instruction therefore executes per two phases.
See DESIGN.md "IFR alignment" for the full timing argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..netlist import Circuit, CircuitBuilder
from .alu import build_alu
from .control import build_alu_control, build_control
from .memory import build_memory
from .regfile import build_regfile

__all__ = ["RiscConfig", "Core", "build_core", "VARIANTS"]

VARIANTS = ("selective-ifr", "buggy-fetchreg", "registered-fetch-safe",
            "full-retention", "no-retention")


@dataclass(frozen=True)
class RiscConfig:
    """Core geometry and retention scheme.

    The instruction width is architecturally fixed at 32 bits; geometry
    knobs scale the *state* (memory depths, register count), which is
    what drives verification cost.  The paper's geometry is
    ``imem_depth=256`` with 32 registers; tests default to a small
    geometry for speed.
    """

    nregs: int = 8
    imem_depth: int = 8
    dmem_depth: int = 8
    variant: str = "selective-ifr"

    def __post_init__(self):
        if self.variant not in VARIANTS:
            raise ValueError(f"unknown variant {self.variant!r}; "
                             f"pick one of {VARIANTS}")
        for name in ("nregs", "imem_depth", "dmem_depth"):
            if getattr(self, name) < 2:
                raise ValueError(f"{name} must be at least 2")

    @property
    def retain_architectural(self) -> bool:
        return self.variant in ("selective-ifr", "buggy-fetchreg",
                                "registered-fetch-safe", "full-retention")

    @property
    def retain_microarchitectural(self) -> bool:
        return self.variant == "full-retention"

    @property
    def control_style(self) -> str:
        return "mips0" if self.variant == "buggy-fetchreg" else "bubble0"

    @property
    def has_separate_ifr(self) -> bool:
        return self.variant not in ("buggy-fetchreg",
                                    "registered-fetch-safe")

    @property
    def imem_addr_bits(self) -> int:
        return max(1, (self.imem_depth - 1).bit_length())

    @property
    def dmem_addr_bits(self) -> int:
        return max(1, (self.dmem_depth - 1).bit_length())


@dataclass
class Core:
    """The elaborated core: circuit plus named handles for properties."""

    config: RiscConfig
    circuit: Circuit
    pc: List[str]
    instruction: List[str]
    opcode: List[str]              # the bus feeding the control unit
    ifr: Optional[List[str]]       # the 6-bit IFR (None in buggy variant)
    control: Dict[str, object]
    alu_ctl: List[str]
    read1: List[str]
    read2: List[str]
    write_register: List[str]
    write_data: List[str]
    sign_ext: List[str]
    alu_result: List[str]
    zero: str
    next_pc: List[str]
    pc_plus4: List[str]
    branch_target: List[str]
    imem_cells: List[List[str]]
    dmem_cells: List[List[str]]
    reg_cells: List[List[str]]

    def imem_cell_bus(self, word: int) -> List[str]:
        return self.imem_cells[word]

    def dmem_cell_bus(self, word: int) -> List[str]:
        return self.dmem_cells[word]

    def reg_cell_bus(self, index: int) -> List[str]:
        return self.reg_cells[index]


def build_core(config: RiscConfig = RiscConfig()) -> Core:
    """Elaborate the core for *config*; every architecturally or
    property-relevant node carries a stable name (see :class:`Core`)."""
    b = CircuitBuilder(f"risc32_{config.variant}")
    width = 32

    clk = b.input("clock")
    nret = b.input("NRET")
    nrst = b.input("NRST")
    # External program-load port into the instruction memory (stands in
    # for the paper's memory write interface: their §III-B property
    # writes the instruction memory before reading it back).
    im_we = b.input("IM_MemWrite")
    im_waddr = b.input_bus("IM_WriteAdd", config.imem_addr_bits)
    im_wdata = b.input_bus("IM_WriteData", width)

    arch_nret = nret if config.retain_architectural else None
    uarch_nret = nret if config.retain_microarchitectural else None

    # ------------------------------------------------------------------
    # Fetch: PC and instruction memory.
    # ------------------------------------------------------------------
    # PC write-enable comes from control (PCWrite); forward-declare the
    # node name and close the loop after control is built.
    pcwrite_node = "PCWrite"
    pc = b.dff_bus("PC", b.fresh_bus(width, "nextpc_wire"), clk,
                   enable=pcwrite_node,
                   nrst=nrst,
                   nret=arch_nret)
    # The fresh d-bus above is a placeholder; rewire by aliasing the
    # real next-PC onto those nodes at the end (single-driver: the
    # placeholder names have no driver until then).
    next_pc_placeholder = [b.circuit.registers[f"PC[{i}]"].d
                           for i in range(width)]

    imem = build_memory(
        b, depth=config.imem_depth, width=width, clk=clk,
        write_enable=im_we, write_addr=im_waddr, write_data=im_wdata,
        read_addr=pc[2:2 + config.imem_addr_bits],
        retained=config.retain_architectural,
        nret=arch_nret, nrst=nrst,
        registered_read=not config.has_separate_ifr,
        read_reg_edge="fall",
        prefix="IM")

    instruction = b.alias_bus("Instruction", imem["read"])

    # ------------------------------------------------------------------
    # The instruction-fetch register and the control unit.
    # ------------------------------------------------------------------
    if config.has_separate_ifr:
        # 6-bit IFR on Instruction[31:26] only (the paper's fix); a
        # plain register in selective mode, retained in full mode.
        ifr = b.dff_bus("IFR", instruction[26:32], clk,
                        nrst=nrst, nret=uarch_nret, edge="fall")
        opcode = ifr
    else:
        # Buggy variant: the registered memory read port already holds
        # the full instruction; control taps its top bits directly.
        ifr = None
        opcode = instruction[26:32]

    control = build_control(b, opcode, style=config.control_style)
    alu_ctl = build_alu_control(b, control["ALUOp"], instruction[0:6])

    # ------------------------------------------------------------------
    # Decode: register bank reads, write-register mux, sign extend.
    # ------------------------------------------------------------------
    rs = instruction[21:26]
    rt = instruction[16:21]
    rd = instruction[11:16]
    write_register = b.mux_bus(control["RegDst"], rd, rt)
    write_register = b.alias_bus("WriteRegister", write_register)

    write_data_placeholder = b.fresh_bus(width, "wdata_wire")
    regs = build_regfile(
        b, nregs=config.nregs, width=width, clk=clk,
        write_enable=control["RegWrite"],
        write_addr=write_register,
        write_data=write_data_placeholder,
        read_addr1=rs, read_addr2=rt,
        retained=config.retain_architectural,
        nret=arch_nret, nrst=nrst)

    sign_ext = b.sign_extend(instruction[0:16], width)
    sign_ext = b.alias_bus("SignExt", sign_ext)

    # ------------------------------------------------------------------
    # Execute: ALU and branch address arithmetic.
    # ------------------------------------------------------------------
    alu_b = b.mux_bus(control["ALUSrc"], sign_ext, regs["read2"])
    alu_b = b.alias_bus("ALUinB", alu_b)
    alu = build_alu(b, regs["read1"], alu_b, alu_ctl)

    pc_plus4 = b.increment(pc, 4)
    pc_plus4 = b.alias_bus("PCplus4", pc_plus4)
    offset = b.shift_left_const(sign_ext, 2)
    branch_target, _ = b.adder(pc_plus4, offset)
    branch_target = b.alias_bus("BranchTarget", branch_target)
    take = b.and_(control["Branch"], alu["zero"], out="PCSrc")
    next_pc = b.mux_bus(take, branch_target, pc_plus4)

    # Close the PC loop through the placeholder d-nodes.
    for placeholder, src in zip(next_pc_placeholder, next_pc):
        b.buf(src, out=placeholder)
    next_pc = b.alias_bus("NextPC", next_pc)

    # ------------------------------------------------------------------
    # Memory stage: data memory.
    # ------------------------------------------------------------------
    dmem = build_memory(
        b, depth=config.dmem_depth, width=width, clk=clk,
        write_enable=control["MemWrite"],
        write_addr=alu["result"][2:2 + config.dmem_addr_bits],
        write_data=regs["read2"],
        read_addr=alu["result"][2:2 + config.dmem_addr_bits],
        read_enable=control["MemRead"],
        retained=config.retain_architectural,
        nret=arch_nret, nrst=nrst,
        prefix="DM")

    # ------------------------------------------------------------------
    # Write-back.
    # ------------------------------------------------------------------
    write_data = b.mux_bus(control["MemtoReg"], dmem["read"], alu["result"])
    for placeholder, src in zip(write_data_placeholder, write_data):
        b.buf(src, out=placeholder)
    write_data = b.alias_bus("WriteData", write_data)

    # Observable outputs.
    for node in pc + instruction + alu["result"] + write_data:
        b.output(node)
    b.output(alu["zero"])

    return Core(
        config=config,
        circuit=b.circuit,
        pc=pc,
        instruction=instruction,
        opcode=list(opcode),
        ifr=ifr,
        control=control,
        alu_ctl=alu_ctl,
        read1=regs["read1"],
        read2=regs["read2"],
        write_register=write_register,
        write_data=write_data,
        sign_ext=sign_ext,
        alu_result=alu["result"],
        zero=alu["zero"],
        next_pc=next_pc,
        pc_plus4=pc_plus4,
        branch_target=branch_target,
        imem_cells=imem["cells"],
        dmem_cells=dmem["cells"],
        reg_cells=regs["cells"],
    )
