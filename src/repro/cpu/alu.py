"""The 32-bit ALU of Fig. 4, gate level.

Implements the classic MIPS single-cycle ALU: AND, OR, ADD, SUB and
SLT selected by the 3-bit ALU-control code (``ALU_AND=000, ALU_OR=001,
ALU_ADD=010, ALU_SUB=110, ALU_SLT=111``), plus the ``Zero`` output that
drives the branch decision.

Structure: ``ALUCtl[2]`` selects subtraction (inverted B + carry-in),
one shared ripple adder serves ADD/SUB/SLT, and the result mux keys on
``ALUCtl[1:0]``.  SLT uses the overflow-corrected sign of A-B,
zero-extended into the result word — the standard trick.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..netlist import CircuitBuilder

__all__ = ["build_alu"]


def build_alu(builder: CircuitBuilder, a: Sequence[str], b: Sequence[str],
              ctl: Sequence[str], prefix: str = "") -> Dict[str, object]:
    """Elaborate the ALU; returns ``{"result": bus, "zero": node}``.

    Result bits are named ``<prefix>ALUResult[i]`` and the flag
    ``<prefix>Zero`` so STE properties can observe them.
    """
    if len(a) != len(b):
        raise ValueError("ALU operand width mismatch")
    if len(ctl) != 3:
        raise ValueError("ALU control must be 3 bits")
    width = len(a)

    # B operand inversion for subtract-family ops (ctl[2]).
    b_eff = [builder.mux(ctl[2], builder.not_(x), x) for x in b]
    total, _carry = builder.adder(a, b_eff, carry_in=ctl[2])

    and_bus = builder.and_bus(a, b)
    or_bus = builder.or_bus(a, b)

    # Overflow-corrected sign of A-B for SLT: sum_msb XOR overflow,
    # overflow = (a_msb ^ b_eff_msb ^ 1) & (a_msb ^ sum_msb) for
    # subtraction; equivalently (a_msb ^ b_msb) & (sum_msb ^ a_msb).
    a_msb, b_msb, sum_msb = a[-1], b[-1], total[-1]
    overflow = builder.and_(builder.xor(a_msb, b_msb),
                            builder.xor(sum_msb, a_msb))
    slt_bit = builder.xor(sum_msb, overflow)
    slt_bus = [slt_bit] + [builder.const0() for _ in range(width - 1)]

    # Result select on ctl[1:0]: 00 AND, 01 OR, 10 ADD/SUB, 11 SLT.
    low_sel = builder.mux_bus(ctl[0], or_bus, and_bus)
    high_sel = builder.mux_bus(ctl[0], slt_bus, total)
    result = builder.mux_bus(ctl[1], high_sel, low_sel)

    named = [builder.buf(bit, out=f"{prefix}ALUResult[{i}]")
             for i, bit in enumerate(result)]
    zero = builder.is_zero(named)
    zero = builder.buf(zero, out=f"{prefix}Zero")
    return {"result": named, "zero": zero}
