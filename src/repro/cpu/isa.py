"""Instruction-set architecture of the 32-bit RISC core.

The paper "architected a 32-bit RISC core adapted from [Hamblen &
Furman]" — the classic MIPS single-cycle subset: R-format arithmetic
(add, sub, and, or, slt), loads/stores (lw, sw) and branch-equal (beq),
with the standard field layout::

    [31:26] opcode   [25:21] rs   [20:16] rt   [15:11] rd
    [10:6]  shamt    [5:0]   funct          /  [15:0] immediate

One deliberate encoding adaptation (documented in DESIGN.md): opcode
``000000`` is *not* R-format here but the **fetch bubble** — the value a
reset Instruction Fetch Register presents to the control unit.  The
control unit decodes the bubble with every write-enable *and* PCWrite
deasserted, making the post-resume reload edge provably harmless: the
CPU stutters for one cycle and then executes the retained instruction.
R-format moves to opcode ``000010``.  The *buggy* pre-fix design
variant (see :mod:`repro.cpu.variants`) keeps the standard MIPS
encoding, where opcode 0 is a live R-format instruction — which is
exactly why its reset fetch register corrupts state after resume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = [
    "WORD", "OPCODE_BITS", "REG_BITS", "FUNCT_BITS", "IMM_BITS",
    "OP_BUBBLE", "OP_RTYPE", "OP_RTYPE_MIPS", "OP_LW", "OP_SW", "OP_BEQ",
    "FUNCT_ADD", "FUNCT_SUB", "FUNCT_AND", "FUNCT_OR", "FUNCT_SLT",
    "ALU_AND", "ALU_OR", "ALU_ADD", "ALU_SUB", "ALU_SLT",
    "Instruction", "encode", "decode", "fields",
]

WORD = 32
OPCODE_BITS = 6
REG_BITS = 5
FUNCT_BITS = 6
IMM_BITS = 16

# Opcodes.  LW/SW/BEQ keep their MIPS values; R-format moves off zero in
# the resume-safe encoding (see module docstring).
OP_BUBBLE = 0b000000
OP_RTYPE = 0b000010
OP_RTYPE_MIPS = 0b000000     # the standard encoding, used by the buggy variant
OP_LW = 0b100011
OP_SW = 0b101011
OP_BEQ = 0b000100

# R-format function codes (standard MIPS).
FUNCT_ADD = 0b100000
FUNCT_SUB = 0b100010
FUNCT_AND = 0b100100
FUNCT_OR = 0b100101
FUNCT_SLT = 0b101010

# 3-bit ALU-control operation encoding.
ALU_AND = 0b000
ALU_OR = 0b001
ALU_ADD = 0b010
ALU_SUB = 0b110
ALU_SLT = 0b111

FUNCT_TO_ALU: Dict[int, int] = {
    FUNCT_ADD: ALU_ADD,
    FUNCT_SUB: ALU_SUB,
    FUNCT_AND: ALU_AND,
    FUNCT_OR: ALU_OR,
    FUNCT_SLT: ALU_SLT,
}


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction (fields always populated; irrelevant ones
    are zero)."""

    opcode: int
    rs: int = 0
    rt: int = 0
    rd: int = 0
    shamt: int = 0
    funct: int = 0
    imm: int = 0

    def __post_init__(self):
        _range("opcode", self.opcode, OPCODE_BITS)
        _range("rs", self.rs, REG_BITS)
        _range("rt", self.rt, REG_BITS)
        _range("rd", self.rd, REG_BITS)
        _range("shamt", self.shamt, 5)
        _range("funct", self.funct, FUNCT_BITS)
        if not -(1 << (IMM_BITS - 1)) <= self.imm < (1 << IMM_BITS):
            raise ValueError(f"immediate {self.imm} out of 16-bit range")

    @property
    def imm_unsigned(self) -> int:
        return self.imm & ((1 << IMM_BITS) - 1)

    @property
    def imm_signed(self) -> int:
        value = self.imm_unsigned
        if value & (1 << (IMM_BITS - 1)):
            value -= 1 << IMM_BITS
        return value

    def is_rtype(self, rtype_opcode: int = OP_RTYPE) -> bool:
        return self.opcode == rtype_opcode


def _range(name: str, value: int, bits: int) -> None:
    if not 0 <= value < (1 << bits):
        raise ValueError(f"{name}={value} does not fit in {bits} bits")


def encode(instr: Instruction) -> int:
    """Pack an :class:`Instruction` into its 32-bit word."""
    if instr.opcode in (OP_LW, OP_SW, OP_BEQ):
        return ((instr.opcode << 26) | (instr.rs << 21) | (instr.rt << 16)
                | instr.imm_unsigned)
    return ((instr.opcode << 26) | (instr.rs << 21) | (instr.rt << 16)
            | (instr.rd << 11) | (instr.shamt << 6) | instr.funct)


def decode(word: int, rtype_opcode: int = OP_RTYPE) -> Instruction:
    """Unpack a 32-bit word.  The immediate and R-format fields are both
    populated; which ones are meaningful depends on the opcode."""
    if not 0 <= word < (1 << WORD):
        raise ValueError(f"word {word:#x} out of 32-bit range")
    f = fields(word)
    return Instruction(opcode=f["opcode"], rs=f["rs"], rt=f["rt"],
                       rd=f["rd"], shamt=f["shamt"], funct=f["funct"],
                       imm=f["imm"])


def fields(word: int) -> Dict[str, int]:
    """Raw field extraction from a 32-bit word."""
    return {
        "opcode": (word >> 26) & 0x3F,
        "rs": (word >> 21) & 0x1F,
        "rt": (word >> 16) & 0x1F,
        "rd": (word >> 11) & 0x1F,
        "shamt": (word >> 6) & 0x1F,
        "funct": word & 0x3F,
        "imm": word & 0xFFFF,
    }
