"""The 32-bit RISC core: ISA, assembler, gate-level datapath, variants,
golden model, and pipeline-generation state inventories."""

from .alu import build_alu
from .assembler import NOP, AssemblerError, assemble, assemble_to_instructions
from .control import (CONTROL_SIGNALS, build_alu_control, build_control,
                      control_truth_table)
from .datapath import Core, RiscConfig, VARIANTS, build_core
from .driver import CoreDriver
from .golden import (MachineState, alu_spec, next_pc_spec,
                     regwrite_value_spec, run_program, step_interpreter)
from .isa import (ALU_ADD, ALU_AND, ALU_OR, ALU_SLT, ALU_SUB,
                  FUNCT_ADD, FUNCT_AND, FUNCT_OR, FUNCT_SLT, FUNCT_SUB,
                  FUNCT_TO_ALU, IMM_BITS, Instruction, OP_BEQ, OP_BUBBLE,
                  OP_LW, OP_RTYPE, OP_RTYPE_MIPS, OP_SW, OPCODE_BITS,
                  REG_BITS, WORD, decode, encode, fields)
from .memory import build_memory
from .pipeline import (GENERATIONS, RegisterGroup, StateInventory,
                       core_inventory, generation_inventory)
from .regfile import build_regfile
from .variants import (MemoryUnit, buggy_core, build_memory_unit,
                       fixed_core, full_retention_core, no_retention_core)

__all__ = [
    "build_alu", "build_alu_control", "build_control", "build_memory",
    "build_regfile", "CONTROL_SIGNALS", "control_truth_table",
    "Core", "RiscConfig", "VARIANTS", "build_core", "CoreDriver",
    "fixed_core", "buggy_core", "full_retention_core", "no_retention_core",
    "MemoryUnit", "build_memory_unit",
    "NOP", "AssemblerError", "assemble", "assemble_to_instructions",
    "MachineState", "alu_spec", "next_pc_spec", "regwrite_value_spec",
    "run_program", "step_interpreter",
    "Instruction", "encode", "decode", "fields",
    "WORD", "OPCODE_BITS", "REG_BITS", "IMM_BITS",
    "OP_BUBBLE", "OP_RTYPE", "OP_RTYPE_MIPS", "OP_LW", "OP_SW", "OP_BEQ",
    "FUNCT_ADD", "FUNCT_SUB", "FUNCT_AND", "FUNCT_OR", "FUNCT_SLT",
    "FUNCT_TO_ALU",
    "ALU_ADD", "ALU_SUB", "ALU_AND", "ALU_OR", "ALU_SLT",
    "GENERATIONS", "RegisterGroup", "StateInventory",
    "core_inventory", "generation_inventory",
]
