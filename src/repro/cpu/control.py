"""The main control unit and the ALU control — gate level.

Fig. 4's control unit maps the 6-bit opcode (``Instruction[31:26]``,
delivered through the IFR in the fixed design) to the nine classic
single-cycle control signals plus our documented ``PCWrite``::

    RegDst  ALUSrc  MemtoReg  RegWrite  MemRead  MemWrite  Branch
    ALUOp[1:0]                                              PCWrite

Two decode *styles* select the encoding (see :mod:`repro.cpu.isa`):

* ``"bubble0"`` — the resume-safe encoding: opcode 0 is the fetch
  bubble, every enable 0 and PCWrite 0; R-format is opcode 2.
* ``"mips0"`` — the standard MIPS encoding used by the pre-fix buggy
  variant: opcode 0 *is* R-format (RegWrite asserted!), and PCWrite is
  constantly 1.  This is the decode under which a reset fetch register
  destroys architectural state after resume.

The ALU control implements the classic two-level scheme: ALUOp 00 →
add (address arithmetic), 01 → sub (beq compare), 1x → decode funct.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..netlist import CircuitBuilder
from .isa import (ALU_ADD, ALU_AND, ALU_OR, ALU_SLT, ALU_SUB,
                  FUNCT_ADD, FUNCT_AND, FUNCT_OR, FUNCT_SLT, FUNCT_SUB,
                  OP_BEQ, OP_LW, OP_RTYPE, OP_RTYPE_MIPS, OP_SW)

__all__ = ["build_control", "build_alu_control", "CONTROL_SIGNALS",
           "control_truth_table"]

#: Control outputs in a stable order (ALUOp is a 2-bit bus).
CONTROL_SIGNALS = ("RegDst", "ALUSrc", "MemtoReg", "RegWrite", "MemRead",
                   "MemWrite", "Branch", "PCWrite")


def control_truth_table(style: str = "bubble0") -> Dict[int, Dict[str, int]]:
    """The golden specification: opcode -> signal values (ALUOp included
    as a 2-bit integer).  Undecoded opcodes give all enables 0 with
    PCWrite per style.  Used by the property generators and the tests.
    """
    rtype = OP_RTYPE if style == "bubble0" else OP_RTYPE_MIPS
    rows = {
        rtype: dict(RegDst=1, ALUSrc=0, MemtoReg=0, RegWrite=1, MemRead=0,
                    MemWrite=0, Branch=0, ALUOp=0b10, PCWrite=1),
        OP_LW: dict(RegDst=0, ALUSrc=1, MemtoReg=1, RegWrite=1, MemRead=1,
                    MemWrite=0, Branch=0, ALUOp=0b00, PCWrite=1),
        OP_SW: dict(RegDst=0, ALUSrc=1, MemtoReg=0, RegWrite=0, MemRead=0,
                    MemWrite=1, Branch=0, ALUOp=0b00, PCWrite=1),
        OP_BEQ: dict(RegDst=0, ALUSrc=0, MemtoReg=0, RegWrite=0, MemRead=0,
                     MemWrite=0, Branch=1, ALUOp=0b01, PCWrite=1),
    }
    return rows


def build_control(builder: CircuitBuilder, opcode: Sequence[str],
                  style: str = "bubble0",
                  prefix: str = "") -> Dict[str, object]:
    """Elaborate the control unit; returns {signal: node or bus}.

    *opcode* is the LSB-first 6-bit opcode bus feeding the unit (the
    IFR output in the fixed design, the fetch register's top bits in
    the buggy one).  Signal nodes are named ``<prefix><Signal>``.
    """
    if style not in ("bubble0", "mips0"):
        raise ValueError(f"unknown control style {style!r}")
    if len(opcode) != 6:
        raise ValueError("control unit expects a 6-bit opcode bus")

    rtype_op = OP_RTYPE if style == "bubble0" else OP_RTYPE_MIPS
    is_rtype = builder.eq_const(opcode, rtype_op)
    is_lw = builder.eq_const(opcode, OP_LW)
    is_sw = builder.eq_const(opcode, OP_SW)
    is_beq = builder.eq_const(opcode, OP_BEQ)

    name = lambda s: f"{prefix}{s}"
    signals: Dict[str, object] = {}
    signals["RegDst"] = builder.buf(is_rtype, out=name("RegDst"))
    signals["ALUSrc"] = builder.or_(is_lw, is_sw, out=name("ALUSrc"))
    signals["MemtoReg"] = builder.buf(is_lw, out=name("MemtoReg"))
    signals["RegWrite"] = builder.or_(is_rtype, is_lw, out=name("RegWrite"))
    signals["MemRead"] = builder.buf(is_lw, out=name("MemRead"))
    signals["MemWrite"] = builder.buf(is_sw, out=name("MemWrite"))
    signals["Branch"] = builder.buf(is_beq, out=name("Branch"))
    # ALUOp: 00 add, 01 sub (beq), 10 funct decode (R-format).
    signals["ALUOp"] = [
        builder.buf(is_beq, out=name("ALUOp[0]")),
        builder.buf(is_rtype, out=name("ALUOp[1]")),
    ]
    if style == "bubble0":
        # Everything except the fetch bubble advances the PC.
        is_bubble = builder.eq_const(opcode, 0)
        signals["PCWrite"] = builder.not_(is_bubble, out=name("PCWrite"))
    else:
        signals["PCWrite"] = builder.buf(builder.const1(),
                                         out=name("PCWrite"))
    return signals


def build_alu_control(builder: CircuitBuilder, aluop: Sequence[str],
                      funct: Sequence[str],
                      prefix: str = "") -> List[str]:
    """The ALU-control block: (ALUOp[1:0], funct[5:0]) -> ALUCtl[2:0].

    ALUOp 00 -> ADD; 01 -> SUB; 1x -> decode funct (add/sub/and/or/slt).
    Undefined functs under R-format fall through to AND (000) — a
    deterministic, write-safe default.
    """
    if len(aluop) != 2 or len(funct) != 6:
        raise ValueError("alu control expects 2-bit aluop and 6-bit funct")

    f_add = builder.eq_const(funct, FUNCT_ADD)
    f_sub = builder.eq_const(funct, FUNCT_SUB)
    f_or = builder.eq_const(funct, FUNCT_OR)
    f_slt = builder.eq_const(funct, FUNCT_SLT)

    # R-format decode as a 3-bit code, built per bit.
    r_bit0 = builder.or_(f_or, f_slt)          # OR(001), SLT(111)
    r_bit1 = builder.or_(f_add, f_sub, f_slt)  # ADD(010), SUB(110), SLT(111)
    r_bit2 = builder.or_(f_sub, f_slt)         # SUB(110), SLT(111)

    is_r = aluop[1]
    is_beq = builder.and_(builder.not_(aluop[1]), aluop[0])

    name = lambda i: f"{prefix}ALUCtl[{i}]"
    # bit0: R-format decode only (ADD=010 and SUB=110 have bit0=0).
    out0 = builder.and_(is_r, r_bit0, out=name(0))
    # bit1: 1 for add (default), sub and R-format add/sub/slt; AND/OR drop it.
    base1 = builder.or_(builder.not_(aluop[1]), builder.and_(is_r, r_bit1))
    out1 = builder.buf(base1, out=name(1))
    # bit2: subtraction (beq) or R-format sub/slt.
    out2 = builder.or_(is_beq, builder.and_(is_r, r_bit2), out=name(2))
    return [out0, out1, out2]
