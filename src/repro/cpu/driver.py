"""Concrete execution driver for the gate-level core.

Runs real programs on the netlist through the scalar simulator:
program load over the external instruction-memory write port, cycle
stepping, architectural-state readback, and the sleep/resume excursion
— the bring-up loop a designer would use next to the formal flow.

Program loading happens *in reverse address order*: the core is live
while words stream in, but as long as word 0 still reads as the
all-zero fetch bubble, the control unit keeps every write enable and
PCWrite deasserted, so the CPU provably idles until the final word
lands at address 0 and execution begins.  (This is itself a nice
consequence of the resume-safe encoding — the same mechanism that
makes the post-resume reload edge harmless makes live load harmless.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim import ScalarSimulator
from .datapath import Core

__all__ = ["CoreDriver"]


class CoreDriver:
    """Drive a :class:`~repro.cpu.datapath.Core` with concrete values."""

    def __init__(self, core: Core):
        if core.config.control_style != "bubble0":
            raise ValueError(
                "CoreDriver requires the resume-safe (bubble0) decode; "
                "the buggy variant executes garbage while loading")
        self.core = core
        self.sim = ScalarSimulator(core.circuit)
        self._clk = 0

    # ------------------------------------------------------------------
    # Phase-level driving
    # ------------------------------------------------------------------
    def _inputs(self, *, clk: int, nret: int = 1, nrst: int = 1,
                im_we: int = 0, im_addr: int = 0, im_data: int = 0
                ) -> Dict[str, int]:
        cfg = self.core.config
        inputs = {"clock": clk, "NRET": nret, "NRST": nrst,
                  "IM_MemWrite": im_we}
        for i in range(cfg.imem_addr_bits):
            inputs[f"IM_WriteAdd[{i}]"] = (im_addr >> i) & 1
        for i in range(32):
            inputs[f"IM_WriteData[{i}]"] = (im_data >> i) & 1
        return inputs

    def phase(self, **kwargs) -> None:
        """Advance one clock phase."""
        self._clk = kwargs.get("clk", self._clk)
        self.sim.step(self._inputs(**{"clk": self._clk, **kwargs}))

    # ------------------------------------------------------------------
    # Bring-up
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Assert NRST in sample mode: clears every resettable flop
        (PC, memories, register bank, IFR).

        A settle phase precedes the pulse: at the very first simulated
        phase all registers are X by definition (there is no previous
        state for the asynchronous controls to act on).
        """
        self.phase(clk=0)
        self.phase(clk=0, nrst=0)
        self.phase(clk=0, nrst=1)

    def load_program(self, words: Sequence[int]) -> None:
        """Stream *words* into the instruction memory (see the module
        docstring for why the order is reversed)."""
        cfg = self.core.config
        if len(words) > cfg.imem_depth:
            raise ValueError(
                f"program of {len(words)} words exceeds instruction "
                f"memory depth {cfg.imem_depth}")
        for address in reversed(range(len(words))):
            self.phase(clk=0, im_we=1, im_addr=address,
                       im_data=words[address])
            self.phase(clk=1, im_we=1, im_addr=address,
                       im_data=words[address])
        self.phase(clk=0)  # settle with writes deasserted

    def boot(self, words: Sequence[int]) -> None:
        """Reset, then load the program: ready to `run`."""
        self.reset()
        self.load_program(words)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_cycles(self, cycles: int) -> None:
        """Execute *cycles* instruction cycles (fall + rise phases)."""
        for _ in range(cycles):
            self.phase(clk=0)
            self.phase(clk=1)

    def sleep_and_resume(self, *, sleep_phases: int = 3) -> None:
        """The §III-A mode excursion: stop clock, NRET low, NRST pulse;
        then the chronological reverse, plus the IFR reload cycle."""
        self.phase(clk=0)              # stop the clock
        self.phase(clk=0, nret=0)      # hold mode
        self.phase(clk=0, nret=0, nrst=0)   # reset pulse during sleep
        for _ in range(sleep_phases):
            self.phase(clk=0, nret=0)
        self.phase(clk=0, nret=1)      # resume: NRET back high
        self.phase(clk=1)              # bubble edge (provably inert)
        # The next run_cycles picks up with the reload falling edge.

    # ------------------------------------------------------------------
    # Testbench backdoors
    # ------------------------------------------------------------------
    def poke_reg(self, index: int, value: int) -> None:
        """Force a register-bank word directly into the simulator state
        (the ISA subset has no load-immediate, so testbenches seed
        operands this way — the formal properties use symbolic state
        instead)."""
        self._poke_bus(self.core.reg_cells[index], value)

    def poke_dmem(self, word: int, value: int) -> None:
        self._poke_bus(self.core.dmem_cells[word], value)

    def _poke_bus(self, bus: Sequence[str], value: int) -> None:
        if self.sim._prev is None:
            raise RuntimeError("simulate at least one phase before poking")
        for i, node in enumerate(bus):
            self.sim._prev[node] = (value >> i) & 1

    # ------------------------------------------------------------------
    # Readback
    # ------------------------------------------------------------------
    def pc(self) -> Optional[int]:
        return self.sim.bus_value(self.core.pc)

    def reg(self, index: int) -> Optional[int]:
        return self.sim.bus_value(self.core.reg_cells[index])

    def regs(self) -> List[Optional[int]]:
        return [self.reg(i) for i in range(self.core.config.nregs)]

    def dmem(self, word: int) -> Optional[int]:
        return self.sim.bus_value(self.core.dmem_cells[word])

    def imem(self, word: int) -> Optional[int]:
        return self.sim.bus_value(self.core.imem_cells[word])

    def instruction_bus(self) -> Optional[int]:
        return self.sim.bus_value(self.core.instruction)
