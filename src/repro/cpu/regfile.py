"""The register bank of Fig. 4, gate level.

Two combinational read ports (mux trees over the bank), one write port
(per-register load enables from the write-address decoder), and a
*retention* knob: with ``retained=True`` every flop is an emulated
retention register hooked to NRET/NRST — the register bank is
programmer-visible state, so the paper's selective scheme retains it.

Registers are general here (no hardwired zero register): the paper's
core is "adapted from" the Hamblen & Furman tutorial design, and a
plain bank keeps the retention story uniform — every architectural bit
is a real flop that must survive sleep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..netlist import CircuitBuilder

__all__ = ["build_regfile"]


def build_regfile(builder: CircuitBuilder, *,
                  nregs: int,
                  width: int,
                  clk: str,
                  write_enable: str,
                  write_addr: Sequence[str],
                  write_data: Sequence[str],
                  read_addr1: Sequence[str],
                  read_addr2: Sequence[str],
                  retained: bool,
                  nret: Optional[str],
                  nrst: Optional[str],
                  prefix: str = "Reg") -> Dict[str, object]:
    """Elaborate the register bank.

    Register *i*'s flops are named ``<prefix><i>[b]``; the read ports
    are ``ReadData1[b]`` / ``ReadData2[b]`` (with the prefix applied in
    front when a non-default prefix is given).  Returns a dict with the
    read-port buses and the list of per-register cell buses.
    """
    if nregs < 1:
        raise ValueError("register bank needs at least one register")
    addr_bits = max(1, (nregs - 1).bit_length())
    for bus_name, bus in (("write_addr", write_addr),
                          ("read_addr1", read_addr1),
                          ("read_addr2", read_addr2)):
        if len(bus) < addr_bits:
            raise ValueError(f"{bus_name} too narrow for {nregs} registers")

    select_w = list(write_addr[:addr_bits])
    select_1 = list(read_addr1[:addr_bits])
    select_2 = list(read_addr2[:addr_bits])

    cells: List[List[str]] = []
    for i in range(nregs):
        enable = builder.and_(write_enable,
                              builder.eq_const(select_w, i))
        q = builder.dff_bus(
            f"{prefix}{i}", write_data, clk, enable=enable,
            nrst=nrst, nret=nret if retained else None)
        cells.append(q)

    port1 = builder.mux_tree(select_1, cells)
    port2 = builder.mux_tree(select_2, cells)
    name1 = "ReadData1" if prefix == "Reg" else f"{prefix}ReadData1"
    name2 = "ReadData2" if prefix == "Reg" else f"{prefix}ReadData2"
    read1 = [builder.buf(b, out=f"{name1}[{i}]") for i, b in enumerate(port1)]
    read2 = [builder.buf(b, out=f"{name2}[{i}]") for i, b in enumerate(port2)]
    return {"read1": read1, "read2": read2, "cells": cells,
            "addr_bits": addr_bits}
