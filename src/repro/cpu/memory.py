"""Word-addressed memory units (instruction and data memory), gate level.

A memory is a bank of word registers with a write-address decoder and a
combinational read port (a mux tree), optionally AND-gated by a read
enable — exactly the structure a synthesized block RAM presents to the
model checker once flattened.  The knobs reproduce the paper's design
space:

* ``retained`` — cells become emulated retention registers (the paper
  retains instruction and data memory: architectural state);
* ``registered_read`` — inserts a *plain, resettable* register on the
  read port output.  This is the synthesized-RAM behaviour the buggy
  pre-fix variant relies on: during sleep NRST clears that register
  (retention gating does not protect it), which is the mechanism behind
  "an asynchronous reset signal resets the input values of the control
  unit".

Port naming follows §III-B's property text: ``WriteData``,
``WriteAdd``, ``ReadAdd``, ``MemWrite``, ``MemRead``, ``ReadData`` —
prefixed per instance (e.g. ``IM_WriteData``) inside the full core.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..netlist import CircuitBuilder

__all__ = ["build_memory"]


def build_memory(builder: CircuitBuilder, *,
                 depth: int,
                 width: int,
                 clk: str,
                 write_enable: str,
                 write_addr: Sequence[str],
                 write_data: Sequence[str],
                 read_addr: Sequence[str],
                 read_enable: Optional[str] = None,
                 retained: bool = False,
                 nret: Optional[str] = None,
                 nrst: Optional[str] = None,
                 registered_read: bool = False,
                 read_reg_edge: str = "rise",
                 prefix: str = "Mem") -> Dict[str, object]:
    """Elaborate one memory; returns read-port bus and cell buses.

    Cell words are named ``<prefix>_cell<w>[b]``; the (possibly
    registered) read port is ``<prefix>_ReadData[b]``.
    """
    if depth < 1:
        raise ValueError("memory needs at least one word")
    addr_bits = max(1, (depth - 1).bit_length())
    if len(write_addr) < addr_bits or len(read_addr) < addr_bits:
        raise ValueError(f"address buses too narrow for depth {depth}")
    if retained and (nret is None or nrst is None):
        raise ValueError("retained memory requires NRET and NRST nodes")

    waddr = list(write_addr[:addr_bits])
    raddr = list(read_addr[:addr_bits])

    cells: List[List[str]] = []
    for w in range(depth):
        enable = builder.and_(write_enable, builder.eq_const(waddr, w))
        q = builder.dff_bus(
            f"{prefix}_cell{w}", write_data, clk, enable=enable,
            nrst=nrst, nret=nret if retained else None)
        cells.append(q)

    raw = builder.mux_tree(raddr, cells)
    if read_enable is not None:
        raw = builder.and_bit(read_enable, raw)

    if registered_read:
        port = builder.dff_bus(f"{prefix}_ReadData", raw, clk,
                               nrst=nrst, edge=read_reg_edge)
    else:
        port = [builder.buf(b, out=f"{prefix}_ReadData[{i}]")
                for i, b in enumerate(raw)]
    return {"read": port, "cells": cells, "addr_bits": addr_bits}
