"""Named core variants and the standalone memory/IFR unit of §III-B.

Convenience constructors over :func:`~repro.cpu.datapath.build_core`,
plus `build_memory_unit` — the isolated instruction-memory + IFR
circuit on which the paper's listed Property II instance (experiment
E8, the "10.83 s" property) runs.  Its port names follow the paper's
text verbatim: ``WriteData``, ``WriteAdd``, ``ReadAdd``, ``MemWrite``,
``MemRead``, ``clock``, ``NRET``, ``NRST``, and the observed register
``IFR_Instr`` (the paper's ``IFR_Instr[31:26]`` maps to our LSB-first
``IFR_Instr[0..5]``, carrying ``Instruction[26..31]``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..netlist import Circuit, CircuitBuilder
from .datapath import Core, RiscConfig, build_core
from .memory import build_memory

__all__ = [
    "fixed_core", "buggy_core", "full_retention_core", "no_retention_core",
    "MemoryUnit", "build_memory_unit",
]


def fixed_core(**geometry) -> Core:
    """The paper's fixed design: selective retention plus the IFR."""
    return build_core(RiscConfig(variant="selective-ifr", **geometry))


def buggy_core(**geometry) -> Core:
    """The reconstructed pre-fix design that fails Property II."""
    return build_core(RiscConfig(variant="buggy-fetchreg", **geometry))


def full_retention_core(**geometry) -> Core:
    """Everything retained — the expensive baseline."""
    return build_core(RiscConfig(variant="full-retention", **geometry))


def no_retention_core(**geometry) -> Core:
    """No retention at all — state dies across sleep."""
    return build_core(RiscConfig(variant="no-retention", **geometry))


@dataclass
class MemoryUnit:
    """The standalone instruction-memory + IFR circuit of §III-B."""

    circuit: Circuit
    depth: int
    width: int
    addr_bits: int
    cells: List[List[str]]
    read_data: List[str]
    ifr: List[str]          # the 6-bit IFR bus ("IFR_Instr")

    def cell_bus(self, word: int) -> List[str]:
        return self.cells[word]


def build_memory_unit(depth: int = 256, width: int = 32,
                      retained: bool = True) -> MemoryUnit:
    """The memory + 6-bit pipeline register of the paper's property.

    The memory is *depth* words of *width* bits ("our Instruction
    Memory is 256 deep and 32 bits wide"), built from retention
    registers; read data is gated by ``MemRead``; the top six bits of
    the read port feed the plain, resettable ``IFR_Instr`` register —
    the configuration whose Property II instance the paper prints.
    """
    if width < 6:
        raise ValueError("memory unit needs at least 6 data bits")
    b = CircuitBuilder("memory_unit")
    clk = b.input("clock")
    nret = b.input("NRET")
    nrst = b.input("NRST")
    we = b.input("MemWrite")
    re = b.input("MemRead")
    addr_bits = max(1, (depth - 1).bit_length())
    waddr = b.input_bus("WriteAdd", addr_bits)
    raddr = b.input_bus("ReadAdd", addr_bits)
    wdata = b.input_bus("WriteData", width)

    mem = build_memory(
        b, depth=depth, width=width, clk=clk,
        write_enable=we, write_addr=waddr, write_data=wdata,
        read_addr=raddr, read_enable=re,
        retained=retained, nret=nret if retained else None, nrst=nrst,
        prefix="IM")

    ifr = b.dff_bus("IFR_Instr", mem["read"][width - 6:width], clk,
                    nrst=nrst)
    for node in ifr + mem["read"]:
        b.output(node)
    return MemoryUnit(
        circuit=b.circuit,
        depth=depth,
        width=width,
        addr_bits=addr_bits,
        cells=mem["cells"],
        read_data=mem["read"],
        ifr=ifr,
    )
