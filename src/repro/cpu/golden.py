"""Word-level golden model of the ISA — the specification side.

STE consequents need the *expected* next architectural state as
Boolean functions of the symbolic present state.  This module computes
those functions over :class:`~repro.bdd.bvec.BVec` words: given a
symbolic PC, instruction and operand words, produce the next PC, the
written-back register value, the data-memory effect, and the ALU
result — independent of the gate-level implementation, so an STE pass
is a genuine implementation-vs-specification theorem.

There is also a pure-integer reference interpreter (`run_program`)
used by the scalar-simulation examples and the cross-validation tests:
netlist simulation, STE and this interpreter must all agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bdd import BDDManager, BVec, Ref
from .isa import (ALU_ADD, ALU_AND, ALU_OR, ALU_SLT, ALU_SUB,
                  FUNCT_TO_ALU, Instruction, OP_BEQ, OP_BUBBLE, OP_LW,
                  OP_RTYPE, OP_SW, WORD, decode, fields)

__all__ = ["alu_spec", "next_pc_spec", "regwrite_value_spec",
           "MachineState", "run_program", "step_interpreter"]


# ----------------------------------------------------------------------
# Symbolic (BVec) specification functions
# ----------------------------------------------------------------------
def alu_spec(a: BVec, b: BVec, op: int) -> BVec:
    """Expected ALU result word for a concrete ALU-control code."""
    mgr = a.mgr
    if op == ALU_AND:
        return a & b
    if op == ALU_OR:
        return a | b
    if op == ALU_ADD:
        return a + b
    if op == ALU_SUB:
        return a - b
    if op == ALU_SLT:
        slt = a.slt(b)
        return BVec(mgr, [slt] + [mgr.false] * (a.width - 1))
    raise ValueError(f"unknown ALU op {op:#05b}")


def next_pc_spec(pc: BVec, *, branch: bool = False,
                 taken: Optional[Ref] = None,
                 imm16: Optional[BVec] = None) -> BVec:
    """Expected next PC: PC+4, or the branch mux when *branch*.

    *taken* is the symbolic take condition (rs == rt for beq) and
    *imm16* the 16-bit immediate word.
    """
    pc4 = pc + 4
    if not branch:
        return pc4
    if taken is None or imm16 is None:
        raise ValueError("branch next-PC needs the taken condition and imm")
    offset = imm16.sign_extend(pc.width).shift_left_const(2)
    target = pc4 + offset
    return target.ite(taken, pc4)


def regwrite_value_spec(alu_result: BVec, mem_data: BVec,
                        memtoreg: bool) -> BVec:
    """Expected write-back value (the MemtoReg mux)."""
    return mem_data if memtoreg else alu_result


# ----------------------------------------------------------------------
# Concrete reference interpreter
# ----------------------------------------------------------------------
_MASK = (1 << WORD) - 1


@dataclass
class MachineState:
    """Architectural state for the reference interpreter."""

    pc: int = 0
    regs: List[int] = field(default_factory=lambda: [0] * 32)
    imem: Dict[int, int] = field(default_factory=dict)   # word index -> word
    dmem: Dict[int, int] = field(default_factory=dict)

    def copy(self) -> "MachineState":
        return MachineState(self.pc, list(self.regs), dict(self.imem),
                            dict(self.dmem))


def _alu_int(a: int, b: int, op: int) -> int:
    if op == ALU_AND:
        return a & b
    if op == ALU_OR:
        return a | b
    if op == ALU_ADD:
        return (a + b) & _MASK
    if op == ALU_SUB:
        return (a - b) & _MASK

    def signed(x: int) -> int:
        return x - (1 << WORD) if x & (1 << (WORD - 1)) else x

    if op == ALU_SLT:
        return 1 if signed(a) < signed(b) else 0
    raise ValueError(f"unknown ALU op {op:#05b}")


def step_interpreter(state: MachineState,
                     rtype_opcode: int = OP_RTYPE) -> MachineState:
    """Execute one instruction; returns the new state (input untouched)."""
    nxt = state.copy()
    word = state.imem.get(state.pc >> 2, 0)
    f = fields(word)
    opcode = f["opcode"]
    imm = f["imm"]
    imm_signed = imm - (1 << 16) if imm & 0x8000 else imm

    if opcode == OP_BUBBLE and rtype_opcode != OP_BUBBLE:
        # Fetch bubble: hold (hardware-only encoding).
        return nxt
    if opcode == rtype_opcode:
        alu_op = FUNCT_TO_ALU.get(f["funct"], ALU_AND)
        nxt.regs[f["rd"]] = _alu_int(state.regs[f["rs"]],
                                     state.regs[f["rt"]], alu_op)
        nxt.pc = (state.pc + 4) & _MASK
    elif opcode == OP_LW:
        addr = (state.regs[f["rs"]] + imm_signed) & _MASK
        nxt.regs[f["rt"]] = state.dmem.get(addr >> 2, 0)
        nxt.pc = (state.pc + 4) & _MASK
    elif opcode == OP_SW:
        addr = (state.regs[f["rs"]] + imm_signed) & _MASK
        nxt.dmem[addr >> 2] = state.regs[f["rt"]]
        nxt.pc = (state.pc + 4) & _MASK
    elif opcode == OP_BEQ:
        if state.regs[f["rs"]] == state.regs[f["rt"]]:
            nxt.pc = (state.pc + 4 + (imm_signed << 2)) & _MASK
        else:
            nxt.pc = (state.pc + 4) & _MASK
    else:
        # Undefined opcode: skip (matches the bubble0 control's
        # all-enables-0, PCWrite=1 default).
        nxt.pc = (state.pc + 4) & _MASK
    return nxt


def run_program(program: Sequence[int], *, steps: int,
                regs: Optional[Dict[int, int]] = None,
                dmem: Optional[Dict[int, int]] = None,
                rtype_opcode: int = OP_RTYPE) -> MachineState:
    """Run *program* (a list of words loaded from address 0) for a fixed
    number of instruction steps; returns the final state."""
    state = MachineState()
    state.imem = {i: w for i, w in enumerate(program)}
    for index, value in (regs or {}).items():
        state.regs[index] = value & _MASK
    state.dmem = dict(dmem or {})
    for _ in range(steps):
        state = step_interpreter(state, rtype_opcode)
    return state
