"""``python -m repro.bench`` — the performance trajectory reporter.

Every benchmark run (``pytest benchmarks/``) appends one *session* to
``BENCH_results.json`` at the repository root: a timestamp, the
platform string, and one ``{bench, outcome, seconds}`` record per
bench.  This module reads that history back and answers the question
the raw file cannot: *which benches moved, and by how much?*

For each bench present in the newest session it prints the wall-clock
trajectory across the last N sessions (oldest → newest), the relative
change of the newest run against the run before it, and a flag when
that change exceeds the regression threshold (default +20%).  Sessions
are compared positionally by bench id, so partial sessions (a run of a
single bench file) simply leave gaps in the older columns.

Exit status: 0 normally, 1 with ``--strict`` when at least one bench
regressed past the threshold — the shape CI gates want.

Usage::

    python -m repro.bench                   # last 5 sessions, 20%
    python -m repro.bench --last 8 --threshold 10
    python -m repro.bench --strict          # exit 1 on regression
    python -m repro.bench --file other.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

__all__ = ["load_sessions", "trajectory", "regressions", "render", "main"]

#: newest-vs-previous relative change above which a bench is flagged
DEFAULT_THRESHOLD_PCT = 20.0

#: how many trailing sessions the report shows
DEFAULT_LAST = 5

#: benches faster than this are never flagged — a 4 ms bench doubling
#: is scheduler noise, not a regression
MIN_FLAG_SECONDS = 0.05


def _default_path() -> Path:
    # src/repro/bench.py -> repo root, where conftest writes the file.
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "BENCH_results.json"
        if candidate.exists():
            return candidate
    return Path("BENCH_results.json")


def load_sessions(path: Path) -> List[dict]:
    """The raw session list, oldest first (the file's order)."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a list of bench sessions")
    return data


def _short(bench_id: str) -> str:
    # benchmarks/test_bench_engines.py::test_bench_x -> test_bench_x
    return bench_id.rsplit("::", 1)[-1]


def trajectory(sessions: Sequence[dict], last: int = DEFAULT_LAST
               ) -> Dict[str, List[Optional[float]]]:
    """Per-bench seconds across the trailing *last* sessions.

    Keyed by full bench id; each value has exactly ``min(last,
    len(sessions))`` slots, oldest first, ``None`` where that session
    did not run the bench.  Only benches present in the newest session
    appear — a bench deleted from the suite drops out of the report.
    """
    window = list(sessions[-last:]) if last > 0 else []
    if not window:
        return {}
    newest = {r["bench"] for r in window[-1].get("records", ())}
    rows: Dict[str, List[Optional[float]]] = {b: [None] * len(window)
                                              for b in sorted(newest)}
    for col, session in enumerate(window):
        for record in session.get("records", ()):
            slots = rows.get(record["bench"])
            if slots is not None:
                slots[col] = record.get("seconds")
    return rows


def _delta_pct(slots: Sequence[Optional[float]]) -> Optional[float]:
    """Newest vs the most recent earlier run of the same bench."""
    newest = slots[-1]
    if newest is None:
        return None
    for earlier in reversed(slots[:-1]):
        if earlier is not None and earlier > 0:
            return (newest - earlier) / earlier * 100.0
    return None


def regressions(rows: Dict[str, List[Optional[float]]],
                threshold_pct: float = DEFAULT_THRESHOLD_PCT
                ) -> Dict[str, float]:
    """Benches whose newest run is more than *threshold_pct* slower
    than their previous recorded run."""
    flagged: Dict[str, float] = {}
    for bench, slots in rows.items():
        delta = _delta_pct(slots)
        if (delta is not None and delta > threshold_pct
                and (slots[-1] or 0.0) >= MIN_FLAG_SECONDS):
            flagged[bench] = delta
    return flagged


def render(sessions: Sequence[dict], last: int = DEFAULT_LAST,
           threshold_pct: float = DEFAULT_THRESHOLD_PCT) -> str:
    """The human-facing report: one row per bench, one time column per
    session, a delta column, and a regression marker."""
    rows = trajectory(sessions, last)
    window = sessions[-last:] if last > 0 else []
    if not rows:
        return "no bench sessions recorded"
    stamps = [s.get("timestamp", "?")[5:16].replace("T", " ")
              for s in window]
    name_w = max(len(_short(b)) for b in rows)
    header = (f"{'bench':<{name_w}}  "
              + "  ".join(f"{st:>11}" for st in stamps)
              + "      Δ last")
    lines = [header, "-" * len(header)]
    flagged = regressions(rows, threshold_pct)
    for bench, slots in rows.items():
        cells = "  ".join(f"{s:>10.2f}s" if s is not None else
                          f"{'—':>11}" for s in slots)
        delta = _delta_pct(slots)
        if delta is None:
            tail = "        new"
        else:
            tail = f"{delta:>+10.1f}%"
            if bench in flagged:
                tail += f"  ← REGRESSION (>{threshold_pct:g}%)"
        lines.append(f"{_short(bench):<{name_w}}  {cells}  {tail}")
    if flagged:
        lines.append(f"{len(flagged)} bench(es) regressed more than "
                     f"{threshold_pct:g}% vs their previous run")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Report per-bench wall-clock trajectories from "
                    "BENCH_results.json and flag regressions.")
    parser.add_argument("--file", type=Path, default=None,
                        help="history file (default: BENCH_results.json "
                             "at the repository root)")
    parser.add_argument("--last", type=int, default=DEFAULT_LAST,
                        help=f"sessions to show (default "
                             f"{DEFAULT_LAST})")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD_PCT,
                        help=f"regression threshold in percent "
                             f"(default {DEFAULT_THRESHOLD_PCT:g})")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any bench regressed past the "
                             "threshold")
    args = parser.parse_args(argv)

    path = args.file or _default_path()
    try:
        sessions = load_sessions(path)
    except FileNotFoundError:
        print(f"{path}: no bench history (run `pytest benchmarks/` "
              f"first)", file=sys.stderr)
        return 2
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"{path}: {exc}", file=sys.stderr)
        return 2

    print(render(sessions, last=args.last, threshold_pct=args.threshold))
    if args.strict and regressions(trajectory(sessions, args.last),
                                   args.threshold):
        return 1
    return 0


if __name__ == "__main__":          # pragma: no cover
    sys.exit(main())
