"""``python -m repro`` — run the paper's property suites from the CLI.

Drives the Property I (normal operation) and Property II (sleep/resume)
suites through :class:`repro.ste.CheckSession` on any verification
backend and prints the per-property verdicts plus the session report::

    python -m repro                         # both suites, STE engine
    python -m repro --engine bmc            # same suites, SAT engine
    python -m repro --engine portfolio --jobs 4
                                            # race engines, 4 workers
    python -m repro --design buggy --suite 2 --cex
                                            # replay the paper's bug
    python -m repro --only fetch_pc_plus4,control_PCWrite
    python -m repro --cache-dir .repro-cache
                                            # warm re-runs skip clean
                                            # cones via the verdict
                                            # cache; --rerun picks the
                                            # re-check policy
    python -m repro --trace run.json        # span trace (Chrome trace-
                                            # event JSON; *.jsonl for
                                            # JSON-lines)
    python -m repro --metrics --profile     # unified metric namespace +
                                            # per-property timing table

Exit status: 0 when every checked property passed, 1 when some property
failed, 2 on a usage error such as an unknown ``--only`` name — or on
error-severity findings from the static-lint gate (``--lint-level``,
default ``error``), which aborts before any engine is constructed (so
the command composes with CI and shell scripts).
"""

from __future__ import annotations

import argparse
import os
import sys
import time as _time
from typing import List, Optional

from .bdd import BDDManager
from .core import CheckSession, RERUN_MODES, engine_names
from .cpu import buggy_core, fixed_core
from .obs import render_cache_line, render_lint_line, render_metrics
from .obs.trace import Tracer, set_tracer, tracer as _tracer
from .retention import build_suite
from .ste import cex_text_for


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Check the DATE'09 retention property suites "
                    "(Property I / Property II) with the STE (BDD) or "
                    "BMC (SAT) engine.")
    parser.add_argument("--engine", choices=engine_names(), default="ste",
                        help="verification backend (default: ste)")
    parser.add_argument("--suite", choices=("1", "2", "both"),
                        default="both",
                        help="property suite: 1=normal operation, "
                             "2=sleep/resume, both (default)")
    parser.add_argument("--design", choices=("fixed", "buggy"),
                        default="fixed",
                        help="the post-fix selective-retention core "
                             "(default) or the pre-fix buggy one")
    parser.add_argument("--nregs", type=int, default=2,
                        help="register-bank depth (default 2)")
    parser.add_argument("--imem-depth", type=int, default=2,
                        help="instruction-memory depth (default 2)")
    parser.add_argument("--dmem-depth", type=int, default=2,
                        help="data-memory depth (default 2)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan properties out across N worker "
                             "processes (capped at the CPUs available; "
                             "default 1 = in-process)")
    parser.add_argument("--only", metavar="NAME[,NAME...]",
                        help="comma-separated property-name filter "
                             "(validated against the suite; unknown "
                             "names are an error)")
    parser.add_argument("--cache-dir", metavar="PATH",
                        default=os.environ.get("REPRO_CACHE_DIR"),
                        help="persistent verdict-cache directory: warm "
                             "re-runs skip properties whose cone/"
                             "property fingerprints are unchanged "
                             "(default: $REPRO_CACHE_DIR, unset = no "
                             "cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent cache even when "
                             "--cache-dir or $REPRO_CACHE_DIR is set")
    parser.add_argument("--rerun", choices=RERUN_MODES, default="dirty",
                        help="with a cache: all = re-check everything "
                             "(refreshing stored verdicts), dirty = "
                             "re-check only fingerprint-dirty "
                             "properties (default), failed = dirty "
                             "plus previously-failed properties")
    parser.add_argument("--extras", action="store_true",
                        help="include the extra (beyond-the-paper) "
                             "properties")
    parser.add_argument("--lint-level", choices=("error", "warn", "off"),
                        default="error",
                        help="static-lint gate before any engine runs: "
                             "error = abort (exit 2) on error-severity "
                             "findings (default), warn = report and "
                             "continue, off = skip the lint pass")
    parser.add_argument("--cex", action="store_true",
                        help="print a concrete counterexample trace for "
                             "each failing property")
    parser.add_argument("--quiet", action="store_true",
                        help="suite summaries only, no per-property "
                             "lines")
    parser.add_argument("--trace", metavar="FILE",
                        help="record a span trace of the whole run and "
                             "write it to FILE on exit: Chrome "
                             "trace-event JSON (chrome://tracing, "
                             "Perfetto) or one event per line with a "
                             ".jsonl suffix; with --jobs, worker spans "
                             "appear as their own process lanes")
    parser.add_argument("--metrics", action="store_true",
                        help="print the unified metric namespace per "
                             "suite (bdd.*, sat.*, cache.*, session.*, "
                             "portfolio.*, parallel.*)")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-property timing breakdown per "
                             "suite, slowest first")
    parser.add_argument("--oversubscribe", action="store_true",
                        help="allow more --jobs workers than available "
                             "CPUs (normally clamped)")
    return parser


def _print_cache_line(report, cache_dir: str, rerun: str) -> None:
    print(render_cache_line(report, cache_dir, rerun))


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.jobs < 1:
        print("error: --jobs must be at least 1", file=sys.stderr)
        return 2
    old_tracer = None
    if args.trace:
        trace = Tracer(enabled=True)
        trace.label_process("main")
        old_tracer = set_tracer(trace)
    try:
        return _run(args)
    finally:
        if old_tracer is not None:
            spans = _tracer().write(args.trace)
            set_tracer(old_tracer)
            print(f"trace: {spans} spans -> {args.trace}",
                  file=sys.stderr)


def _run(args) -> int:
    cache_dir = None if args.no_cache else args.cache_dir
    make_core = buggy_core if args.design == "buggy" else fixed_core
    core = make_core(nregs=args.nregs, imem_depth=args.imem_depth,
                     dmem_depth=args.dmem_depth)
    if args.lint_level != "off":
        # The fail-fast gate: lint the circuit (plus its canonical
        # power intent) before any suite is built or engine compiled.
        from .lint import run_lint
        from .lint.engine import CIRCUIT_RULE_IGNORE
        from .upf import intent_for_core
        lint_report = run_lint(core.circuit,
                               intent=intent_for_core(core.circuit),
                               ignore=CIRCUIT_RULE_IGNORE)
        print(render_lint_line(lint_report, args.lint_level))
        if args.lint_level == "error" and lint_report.errors:
            for diag in lint_report.errors:
                print(f"  {diag.render()}", file=sys.stderr)
            return 2
    only: Optional[List[str]] = None
    if args.only is not None:
        only = [name.strip() for name in args.only.split(",")
                if name.strip()]
        if not only:
            print("error: --only selected no properties",
                  file=sys.stderr)
            return 2

    sleeps = {"1": (False,), "2": (True,), "both": (False, True)}[args.suite]
    all_passed = True
    for sleep in sleeps:
        label = "Property II (sleep/resume)" if sleep \
            else "Property I (normal operation)"
        suite_t0 = _time.perf_counter()
        mgr = BDDManager()
        suite = build_suite(core, mgr, sleep=sleep,
                            include_extras=args.extras)
        if only is not None:
            valid = [p.name for p in suite]
            missing = sorted(set(only) - set(valid))
            if missing:
                print(f"error: unknown properties: "
                      f"{', '.join(missing)}", file=sys.stderr)
                print(f"valid names: {', '.join(valid)}",
                      file=sys.stderr)
                return 2
            wanted = set(only)
            suite = [p for p in suite if p.name in wanted]
        print(f"== {label} on the {args.design} core "
              f"[engine={args.engine}] ==")
        units = {p.name: p.unit for p in suite}
        if args.jobs > 1:
            from .parallel import SuiteSpec, run_parallel
            spec = SuiteSpec(design=args.design, nregs=args.nregs,
                             imem_depth=args.imem_depth,
                             dmem_depth=args.dmem_depth, sleep=sleep,
                             include_extras=args.extras)
            report = run_parallel(core, suite, jobs=args.jobs,
                                  engine=args.engine, spec=spec,
                                  mgr=mgr, cache_dir=cache_dir,
                                  rerun=args.rerun,
                                  oversubscribe=args.oversubscribe)
            for outcome in report.outcomes:
                if not args.quiet:
                    print(f"  {outcome.name:<28} "
                          f"[{units.get(outcome.name, '?'):<9}] "
                          f"{outcome.result.summary()}")
                if not outcome.passed:
                    all_passed = False
                    if args.cex and outcome.result.cex_text:
                        print(outcome.result.cex_text)
            print(report.summary())
        else:
            session = CheckSession(core.circuit, mgr, engine=args.engine,
                                   cache=cache_dir, rerun=args.rerun)
            for prop in suite:
                result = session.check(prop.antecedent, prop.consequent,
                                       name=prop.name)
                if not args.quiet:
                    print(f"  {prop.name:<28} [{prop.unit:<9}] "
                          f"{result.summary()}")
                if not result.passed:
                    all_passed = False
                    if args.cex:
                        # Cache-served failures carry a pre-rendered
                        # trace instead of live BDD/solver state.
                        text = cex_text_for(result)
                        if text:
                            print(text)
            report = session.report()
            session.close()
            print(report.summary())
        if cache_dir:
            _print_cache_line(report, cache_dir, args.rerun)
        if args.profile:
            print(report.timing_table())
        if args.metrics:
            print(render_metrics(report.metrics()))
        # The suite-level root span, recorded retroactively so it
        # encloses every property/engine/cache span of this suite.
        _tracer().add_span("session", suite_t0, _time.perf_counter(),
                           cat="session", suite=label,
                           engine=args.engine, jobs=report.jobs)
        print()
    return 0 if all_passed else 1


if __name__ == "__main__":
    sys.exit(main())
