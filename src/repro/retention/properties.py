"""The STE property suite of §III-B.

"In total for Property I, we developed 26 properties (2 for fetch, 6
for decode, 11 for control, 6 for execute and 1 for write back) …
In line with Property II, these properties were then modified to
incorporate the sleep and resume operations, and were then re-checked
again to see if they still hold."

This module reproduces that suite.  Every property follows the paper's
recipe: the antecedent supplies an *arbitrary symbolic present state*
(PC, instruction memory content via symbolic indexing, register-bank
and data-memory words via symbolic indexing) plus the clock/NRET/NRST
waveforms of the schedule; the consequent states the unit's expected
response as Boolean functions of those symbols, guarded by the
operating condition (``f when G``).

The same spec builders serve Property I (NRET high throughout) and
Property II (sleep + resume spliced in): the schedule object dictates
when the operating phase and the next-state step occur, and sleep
schedules automatically extend the consequent with the retention
checks (architectural state unchanged through the excursion, the
control-unit input register zeroed by the in-sleep reset and reloaded
from the retained instruction memory after resume).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..bdd import BDDManager, BVec, Ref, interleave
from ..cpu import (ALU_ADD, ALU_AND, ALU_OR, ALU_SLT, ALU_SUB, Core,
                   FUNCT_ADD, FUNCT_AND, FUNCT_OR, FUNCT_SLT, FUNCT_SUB,
                   OP_BEQ, OP_LW, OP_RTYPE, OP_RTYPE_MIPS, OP_SW, alu_spec)
from ..ste import (CheckSession, Formula, STEResult, SessionReport,
                   TRUE_FORMULA, check, conj, from_to,
                   indexed_memory_antecedent, is0, node_is, vec_is, when)
from .spec import Schedule, property1_schedule, schedule_for_variant

__all__ = ["CpuProperty", "PropertyEnv", "build_suite", "run_suite",
           "run_suite_session", "UNIT_COUNTS", "vec_when", "bit_when",
           "indexed_cells_formula"]

#: The paper's per-unit property counts.
UNIT_COUNTS = {"fetch": 2, "decode": 6, "control": 11, "execute": 6,
               "writeback": 1}


# ----------------------------------------------------------------------
# Formula helpers
# ----------------------------------------------------------------------
def vec_when(nodes: Sequence[str], vec: BVec, guard: Ref,
             start: int, stop: int) -> Formula:
    """Bus equals *vec* wherever *guard* holds (X elsewhere).

    The guard rides on a formula-level ``when`` rather than being fused
    into each bit's lattice value: the defining sequence is identical
    (Defn 2 applies it per constrained point either way), but the
    factorisation survives into :func:`repro.ste.defining_atoms`, where
    the SAT engine turns the shared guard into a single literal instead
    of multiplying it into both rails of all 32 bits.
    """
    body = conj([from_to(node_is(n, b), start, stop)
                 for n, b in zip(nodes, vec.bits)])
    return when(body, guard)


def bit_when(node: str, value: Ref, guard: Ref,
             start: int, stop: int) -> Formula:
    return when(from_to(node_is(node, value), start, stop), guard)


def indexed_cells_formula(cell_bus, depth: int, index: BVec, data: BVec,
                          start: int, stop: int,
                          guard: Optional[Ref] = None) -> Formula:
    """Cells hold *data* at *index* over [start, stop) — used both as an
    antecedent (initial content) and as a retention consequent."""
    mgr = index.mgr
    parts: List[Formula] = []
    for w in range(depth):
        g = index.eq(w)
        if guard is not None:
            g = g & guard
        body = conj([from_to(node_is(node, bit), start, stop)
                     for node, bit in zip(cell_bus(w), data.bits)])
        parts.append(when(body, g))
    return conj(parts)


# ----------------------------------------------------------------------
# The symbolic environment shared by all properties
# ----------------------------------------------------------------------
@dataclass
class PropertyEnv:
    """Symbolic present-state variables, shared across the suite so the
    BDD manager interns one copy of each."""

    mgr: BDDManager
    pc: BVec           # 32-bit program counter
    ins: BVec          # the 32-bit instruction word at PC
    k1: BVec           # register index 1 (rs-side)
    r1: BVec           # register word 1
    k2: BVec           # register index 2 (rt-side)
    r2: BVec           # register word 2
    dl: BVec           # data-memory index
    dm: BVec           # data-memory word

    # Field views of the instruction word (LSB-first layout).
    @property
    def opcode(self) -> BVec:
        return self.ins[26:32]

    @property
    def rs(self) -> BVec:
        return self.ins[21:26]

    @property
    def rt(self) -> BVec:
        return self.ins[16:21]

    @property
    def rd(self) -> BVec:
        return self.ins[11:16]

    @property
    def funct(self) -> BVec:
        return self.ins[0:6]

    @property
    def imm(self) -> BVec:
        return self.ins[0:16]

    def word(self, opcode: Optional[int] = None,
             funct: Optional[int] = None) -> BVec:
        """The instruction word with opcode and/or funct pinned to
        constants — the property's *operating condition*.

        Pinning these fields in the antecedent (rather than only
        guarding the consequent) is standard STE practice and matters
        enormously for BDD size: a constant opcode collapses the
        control outputs, so the datapath evaluates one concrete ALU
        mode instead of a symbolic superposition of all of them.
        """
        bits = list(self.ins.bits)
        if opcode is not None:
            bits[26:32] = BVec.constant(self.mgr, opcode, 6).bits
        if funct is not None:
            bits[0:6] = BVec.constant(self.mgr, funct, 6).bits
        return BVec(self.mgr, bits)


def make_env(core: Core, mgr: BDDManager) -> PropertyEnv:
    """Declare the suite's symbolic variables.

    Variable order is chosen deliberately (the classic STE disciplines,
    see :mod:`repro.bdd.reorder`): the small index/selector vectors go
    on top, and all 32-bit data words are *bit-interleaved* — the
    datapath's ripple adders (ALU, branch target, load/store address)
    mix bits of pc/ins/R1/R2/M at the same significance, and a
    non-interleaved order makes their carry BDDs exponential.
    """
    cfg = core.config
    rbits = max(1, (cfg.nregs - 1).bit_length())
    dbits = cfg.dmem_addr_bits
    order: List[str] = []
    for prefix, bits in (("K1", rbits), ("K2", rbits), ("L", dbits)):
        order += [f"{prefix}[{i}]" for i in range(bits)]
    order += interleave(*[[f"{p}[{i}]" for i in range(32)]
                          for p in ("pc", "ins", "R1", "R2", "M")])
    mgr.declare_all(order)
    return PropertyEnv(
        mgr=mgr,
        pc=BVec.variables(mgr, "pc", 32),
        ins=BVec.variables(mgr, "ins", 32),
        k1=BVec.variables(mgr, "K1", rbits),
        k2=BVec.variables(mgr, "K2", rbits),
        r1=BVec.variables(mgr, "R1", 32),
        r2=BVec.variables(mgr, "R2", 32),
        dl=BVec.variables(mgr, "L", dbits),
        dm=BVec.variables(mgr, "M", 32),
    )


# ----------------------------------------------------------------------
# Present-state assembly
# ----------------------------------------------------------------------
def present_state(core: Core, env: PropertyEnv, sched: Schedule, *,
                  regs: bool = False, dmem: bool = False,
                  instr: Optional[BVec] = None
                  ) -> Tuple[Formula, Formula]:
    """(antecedent fragment, retention-consequent fragment).

    Asserts the symbolic present state at the schedule's present step:
    PC, the instruction word at PC's word index (via symbolic indexing
    into the instruction memory), and optionally two indexed register
    words and one indexed data-memory word.  For sleep schedules the
    second component demands that all of it is still there at every
    step of the hold window — the retention theorem.
    """
    cfg = core.config
    t0 = sched.t_present
    word = instr if instr is not None else env.ins
    pc_index = env.pc[2:2 + cfg.imem_addr_bits]
    parts: List[Formula] = [
        vec_is(core.pc, env.pc).from_to(t0, t0 + 1),
        indexed_cells_formula(core.imem_cell_bus, cfg.imem_depth,
                              pc_index, word, t0, t0 + 1),
        from_to(is0("IM_MemWrite"), 0, sched.depth),
    ]
    hold: List[Formula] = []
    h0, h1 = sched.hold_window
    if sched.is_sleep:
        hold.append(vec_is(core.pc, env.pc).from_to(h0, h1))
        hold.append(indexed_cells_formula(core.imem_cell_bus,
                                          cfg.imem_depth, pc_index,
                                          word, h0, h1))
    if regs:
        rbits = max(1, (cfg.nregs - 1).bit_length())
        for index, data in ((env.k1, env.r1), (env.k2, env.r2)):
            parts.append(indexed_cells_formula(
                core.reg_cell_bus, cfg.nregs, index, data, t0, t0 + 1))
            if sched.is_sleep:
                hold.append(indexed_cells_formula(
                    core.reg_cell_bus, cfg.nregs, index, data, h0, h1))
    if dmem:
        parts.append(indexed_cells_formula(
            core.dmem_cell_bus, cfg.dmem_depth, env.dl, env.dm, t0, t0 + 1))
        if sched.is_sleep:
            hold.append(indexed_cells_formula(
                core.dmem_cell_bus, cfg.dmem_depth, env.dl, env.dm, h0, h1))
    return conj(parts), (conj(hold) if hold else TRUE_FORMULA)


def sleep_control_checks(core: Core, env: PropertyEnv,
                         sched: Schedule) -> Formula:
    """The §III-B control-input checks during a sleep excursion: the
    opcode register is cleared by the in-sleep reset and, for designs
    with a reload edge, re-acquires the retained opcode after resume."""
    if not sched.is_sleep:
        return TRUE_FORMULA
    parts: List[Formula] = []
    zero_until = sched.t_reload if sched.t_reload is not None else sched.depth
    if not core.config.retain_microarchitectural:
        parts.append(vec_is(core.opcode, 0).from_to(sched.t_reset, zero_until))
        if sched.t_reload is not None:
            parts.append(vec_when(core.opcode, env.opcode, env.mgr.true,
                                  sched.t_reload, sched.t_reload + 1))
    return conj(parts) if parts else TRUE_FORMULA


# ----------------------------------------------------------------------
# Specification-side control functions (the golden truth table as BDDs)
# ----------------------------------------------------------------------
def control_spec(env: PropertyEnv, style: str) -> Dict[str, Ref]:
    mgr = env.mgr
    op = env.opcode
    rtype = OP_RTYPE if style == "bubble0" else OP_RTYPE_MIPS
    is_r = op.eq(rtype)
    is_lw = op.eq(OP_LW)
    is_sw = op.eq(OP_SW)
    is_beq = op.eq(OP_BEQ)
    return {
        "RegDst": is_r,
        "ALUSrc": is_lw | is_sw,
        "MemtoReg": is_lw,
        "RegWrite": is_r | is_lw,
        "MemRead": is_lw,
        "MemWrite": is_sw,
        "Branch": is_beq,
        "ALUOp[0]": is_beq,
        "ALUOp[1]": is_r,
        "PCWrite": (~op.eq(0)) if style == "bubble0" else mgr.true,
    }


def aluctl_spec(env: PropertyEnv, style: str) -> List[Ref]:
    """Expected ALUCtl[2:0] as functions of opcode and funct."""
    op, fn = env.opcode, env.funct
    rtype = OP_RTYPE if style == "bubble0" else OP_RTYPE_MIPS
    is_r = op.eq(rtype)
    is_beq = op.eq(OP_BEQ)
    f_add = fn.eq(FUNCT_ADD)
    f_sub = fn.eq(FUNCT_SUB)
    f_or = fn.eq(FUNCT_OR)
    f_slt = fn.eq(FUNCT_SLT)
    bit0 = is_r & (f_or | f_slt)
    bit1 = (is_r & (f_add | f_sub | f_slt)) | ~is_r
    bit2 = env.mgr.ite(is_r, f_sub | f_slt, is_beq)
    return [bit0, bit1, bit2]


# ----------------------------------------------------------------------
# Property objects
# ----------------------------------------------------------------------
@dataclass
class CpuProperty:
    """One checkable STE property of the suite."""

    name: str
    unit: str
    antecedent: Formula
    consequent: Formula
    schedule: Schedule

    def check(self, core: Core, mgr: BDDManager,
              session: Optional[CheckSession] = None,
              engine: Optional[str] = None):
        """Decide the property on *core* — through a shared *session*
        when given, one-shot otherwise; *engine* picks the backend
        ("ste"/"bmc", default: the session's engine or STE)."""
        if session is not None:
            if session.circuit is not core.circuit:
                raise ValueError(
                    f"session was built for circuit "
                    f"{session.circuit.name!r}, not {core.circuit.name!r}; "
                    f"a session checks only the circuit it compiled")
            if session.mgr is not mgr:
                raise ValueError(
                    "session uses a different BDDManager than the one "
                    "the property formulas were built on")
            return session.check(self.antecedent, self.consequent,
                                 name=self.name, engine=engine)
        return check(core.circuit, self.antecedent, self.consequent, mgr,
                     engine=engine or "ste")


Builder = Callable[[Core, PropertyEnv, Schedule], Tuple[Formula, Formula]]


def _reg_read_guards(env: PropertyEnv, nregs: int) -> Tuple[Ref, Ref]:
    """Guards tying the instruction's rs/rt fields to the indexed
    register words (the hardware uses the low address bits)."""
    rbits = max(1, (nregs - 1).bit_length())
    g1 = env.rs[0:rbits].eq(env.k1)
    g2 = env.rt[0:rbits].eq(env.k2)
    return g1, g2


# -- fetch ---------------------------------------------------------------
def _build_fetch_sequential(core, env, sched):
    style = core.config.control_style
    op = env.opcode
    non_branch = ~op.eq(OP_BEQ)
    if style == "bubble0":
        non_branch = non_branch & ~op.eq(0)
    a, hold = present_state(core, env, sched)
    expected = env.pc + 4
    c = vec_when(core.pc, expected, non_branch,
                 sched.t_execute, sched.t_execute + 1)
    return a, conj([c, hold])


def _build_fetch_branch(core, env, sched):
    a_regs, hold = present_state(core, env, sched, regs=True,
                                 instr=env.word(opcode=OP_BEQ))
    g1, g2 = _reg_read_guards(env, core.config.nregs)
    guard = g1 & g2
    taken = env.r1.eq(env.r2)
    pc4 = env.pc + 4
    target = pc4 + env.imm.sign_extend(32).shift_left_const(2)
    expected = target.ite(taken, pc4)
    c = vec_when(core.pc, expected, guard,
                 sched.t_execute, sched.t_execute + 1)
    return a_regs, conj([c, hold])


# -- decode --------------------------------------------------------------
def _build_read_port(core, env, sched, port: int):
    # Operating condition: a branch word (no architectural writes, a
    # single concrete ALU mode) — the read ports themselves are opcode-
    # independent, so the theorem loses nothing.
    a, hold = present_state(core, env, sched, regs=True,
                            instr=env.word(opcode=OP_BEQ))
    g1, g2 = _reg_read_guards(env, core.config.nregs)
    t = sched.t_operate
    if port == 1:
        c = vec_when(core.read1, env.r1, g1, t, t + 1)
    else:
        c = vec_when(core.read2, env.r2, g2, t, t + 1)
    return a, conj([c, hold])


def _build_sign_extend(core, env, sched):
    a, hold = present_state(core, env, sched)
    t = sched.t_operate
    c = vec_when(core.sign_ext, env.imm.sign_extend(32), env.mgr.true,
                 t, t + 1)
    return a, conj([c, hold])


def _build_write_register_mux(core, env, sched, rtype: bool):
    style = core.config.control_style
    if rtype:
        opcode = OP_RTYPE if style == "bubble0" else OP_RTYPE_MIPS
        expected = env.rd
    else:
        opcode = OP_LW
        expected = env.rt
    a, hold = present_state(core, env, sched, instr=env.word(opcode=opcode))
    t = sched.t_operate
    c = vec_when(core.write_register, expected, env.mgr.true, t, t + 1)
    return a, conj([c, hold])


def _build_alusrc_mux(core, env, sched):
    # Immediate side of the ALUSrc mux under a store word (no writes);
    # the register side is exercised by every execute_alu_* property,
    # which reads its second operand through the same mux.
    a, hold = present_state(core, env, sched,
                            instr=env.word(opcode=OP_SW))
    t = sched.t_operate
    alu_b = core.circuit.bus("ALUinB", 32)
    c = vec_when(alu_b, env.imm.sign_extend(32), env.mgr.true, t, t + 1)
    return a, conj([c, hold])


# -- control -------------------------------------------------------------
def _build_control_signal(core, env, sched, signal: str):
    a, hold = present_state(core, env, sched)
    spec = control_spec(env, core.config.control_style)
    t = sched.t_operate
    c = bit_when(signal, spec[signal], env.mgr.true, t, t + 1)
    sleep_c = sleep_control_checks(core, env, sched)
    return a, conj([c, hold, sleep_c])


def _build_alu_control(core, env, sched):
    a, hold = present_state(core, env, sched)
    bits = aluctl_spec(env, core.config.control_style)
    t = sched.t_operate
    c = conj([bit_when(f"ALUCtl[{i}]", bit, env.mgr.true, t, t + 1)
              for i, bit in enumerate(bits)])
    sleep_c = sleep_control_checks(core, env, sched)
    return a, conj([c, hold, sleep_c])


# -- execute -------------------------------------------------------------
def _rtype_opcode(style: str) -> int:
    return OP_RTYPE if style == "bubble0" else OP_RTYPE_MIPS


def _build_alu_op(core, env, sched, funct: int, alu_op: int):
    word = env.word(opcode=_rtype_opcode(core.config.control_style),
                    funct=funct)
    a, hold = present_state(core, env, sched, regs=True, instr=word)
    g1, g2 = _reg_read_guards(env, core.config.nregs)
    guard = g1 & g2
    expected = alu_spec(env.r1, env.r2, alu_op)
    t = sched.t_operate
    c = vec_when(core.alu_result, expected, guard, t, t + 1)
    return a, conj([c, hold])


def _build_zero_flag(core, env, sched):
    a, hold = present_state(core, env, sched, regs=True,
                            instr=env.word(opcode=OP_BEQ))
    g1, g2 = _reg_read_guards(env, core.config.nregs)
    guard = g1 & g2
    t = sched.t_operate
    c = bit_when(core.zero, env.r1.eq(env.r2), guard, t, t + 1)
    return a, conj([c, hold])


# -- write-back ----------------------------------------------------------
def _build_load_writeback(core, env, sched):
    cfg = core.config
    a, hold = present_state(core, env, sched, regs=True, dmem=True,
                            instr=env.word(opcode=OP_LW))
    g1, _g2 = _reg_read_guards(env, cfg.nregs)
    addr = env.r1 + env.imm.sign_extend(32)
    addr_guard = addr[2:2 + cfg.dmem_addr_bits].eq(env.dl)
    guard = g1 & addr_guard
    rbits = max(1, (cfg.nregs - 1).bit_length())
    target = env.rt[0:rbits]
    t = sched.t_execute
    c = indexed_cells_formula(core.reg_cell_bus, cfg.nregs, target, env.dm,
                              t, t + 1, guard=guard)
    return a, conj([c, hold])


# -- extras (beyond the paper's 26, clearly labelled) ----------------------
def _build_store(core, env, sched):
    cfg = core.config
    a, hold = present_state(core, env, sched, regs=True,
                            instr=env.word(opcode=OP_SW))
    g1, g2 = _reg_read_guards(env, cfg.nregs)
    addr = env.r1 + env.imm.sign_extend(32)
    index = addr[2:2 + cfg.dmem_addr_bits]
    guard = g1 & g2
    t = sched.t_execute
    c = indexed_cells_formula(core.dmem_cell_bus, cfg.dmem_depth, index,
                              env.r2, t, t + 1, guard=guard)
    return a, conj([c, hold])


def _build_rtype_writeback(core, env, sched):
    cfg = core.config
    word = env.word(opcode=_rtype_opcode(cfg.control_style), funct=FUNCT_OR)
    a, hold = present_state(core, env, sched, regs=True, instr=word)
    g1, g2 = _reg_read_guards(env, cfg.nregs)
    guard = g1 & g2
    rbits = max(1, (cfg.nregs - 1).bit_length())
    target = env.rd[0:rbits]
    t = sched.t_execute
    c = indexed_cells_formula(core.reg_cell_bus, cfg.nregs, target,
                              env.r1 | env.r2, t, t + 1, guard=guard)
    return a, conj([c, hold])


# ----------------------------------------------------------------------
# Suite assembly
# ----------------------------------------------------------------------
def build_suite(core: Core, mgr: Optional[BDDManager] = None, *,
                sleep: bool = False,
                include_extras: bool = False) -> List[CpuProperty]:
    """The 26-property suite for *core* (Property I by default; pass
    ``sleep=True`` for the Property II versions).

    The per-unit counts match the paper: 2 fetch, 6 decode, 11 control,
    6 execute, 1 write-back.  ``include_extras`` appends properties
    beyond the paper's 26 (store, R-type write-back) labelled unit
    ``"extra"``.
    """
    mgr = mgr or BDDManager()
    env = make_env(core, mgr)
    sched = schedule_for_variant(core.config.variant, sleep)

    table: List[Tuple[str, str, Builder]] = [
        ("fetch_pc_plus4", "fetch", _build_fetch_sequential),
        ("fetch_branch", "fetch", _build_fetch_branch),
        ("decode_read_port1", "decode",
         lambda c, e, s: _build_read_port(c, e, s, 1)),
        ("decode_read_port2", "decode",
         lambda c, e, s: _build_read_port(c, e, s, 2)),
        ("decode_sign_extend", "decode", _build_sign_extend),
        ("decode_write_register_rtype", "decode",
         lambda c, e, s: _build_write_register_mux(c, e, s, True)),
        ("decode_write_register_load", "decode",
         lambda c, e, s: _build_write_register_mux(c, e, s, False)),
        ("decode_alusrc_mux", "decode", _build_alusrc_mux),
    ]
    for signal in ("RegDst", "ALUSrc", "MemtoReg", "RegWrite", "MemRead",
                   "MemWrite", "Branch", "ALUOp[0]", "ALUOp[1]", "PCWrite"):
        table.append((f"control_{signal}", "control",
                      lambda c, e, s, sig=signal:
                      _build_control_signal(c, e, s, sig)))
    table.append(("control_ALUCtl", "control", _build_alu_control))
    for fname, funct, alu_op in (("add", FUNCT_ADD, ALU_ADD),
                                 ("sub", FUNCT_SUB, ALU_SUB),
                                 ("and", FUNCT_AND, ALU_AND),
                                 ("or", FUNCT_OR, ALU_OR),
                                 ("slt", FUNCT_SLT, ALU_SLT)):
        table.append((f"execute_alu_{fname}", "execute",
                      lambda c, e, s, f=funct, o=alu_op:
                      _build_alu_op(c, e, s, f, o)))
    table.append(("execute_zero_flag", "execute", _build_zero_flag))
    table.append(("writeback_load", "writeback", _build_load_writeback))
    if include_extras:
        table.append(("extra_store", "extra", _build_store))
        table.append(("extra_rtype_writeback", "extra",
                      _build_rtype_writeback))

    out: List[CpuProperty] = []
    for name, unit, builder in table:
        extra_a, consequent = builder(core, env, sched)
        antecedent = conj([sched.base, extra_a])
        out.append(CpuProperty(name, unit, antecedent, consequent, sched))
    return out


def run_suite(core: Core, properties: Sequence[CpuProperty],
              mgr: BDDManager,
              session: Optional[CheckSession] = None,
              engine: Optional[str] = None) -> Dict[str, object]:
    """Check every property; returns {name: result}.

    Runs through a :class:`~repro.ste.CheckSession` so the circuit is
    validated once and compiled cones are shared across properties —
    verdicts are identical to per-property :meth:`CpuProperty.check`
    calls on the same manager.  *engine* selects the backend for every
    property (defaults to the session's engine).
    """
    if session is None:
        session = CheckSession(core.circuit, mgr, engine=engine or "ste")
        engine = None
    elif session.circuit is not core.circuit:
        raise ValueError(
            f"session was built for circuit {session.circuit.name!r}, "
            f"not {core.circuit.name!r}; a session checks only the "
            f"circuit it compiled")
    elif session.mgr is not mgr:
        raise ValueError(
            "session uses a different BDDManager than the one the "
            "property formulas were built on")
    return {p.name: session.check(p.antecedent, p.consequent, name=p.name,
                                  engine=engine)
            for p in properties}


def run_suite_session(core: Core, properties: Sequence[CpuProperty],
                      mgr: Optional[BDDManager] = None,
                      engine: str = "ste",
                      jobs: int = 1,
                      cache_dir: Optional[str] = None,
                      rerun: str = "dirty") -> SessionReport:
    """Batched suite run with the aggregate session report (per-unit
    timing, model reuse and engine statistics) on any backend.

    ``jobs > 1`` fans the properties out across worker processes
    (grouped by cone, pulled from a shared work queue, one BDD manager
    / SAT context per worker) via :func:`repro.parallel.run_parallel`;
    worker processes rebuild the suite from the core's recipe, so
    *properties* must come from :func:`build_suite` (when the run
    degrades to a single in-process partition, *mgr* lets it check the
    caller's suite directly), and verdicts stay identical to the
    serial run.  ``engine="portfolio"`` races STE against BMC per
    property in either mode.

    *cache_dir* attaches the persistent verdict cache
    (:class:`repro.core.VerdictCache`): warm re-runs skip properties
    whose cone/property fingerprints are unchanged and serve the
    stored verdicts instead — *rerun* selects the policy (see
    :data:`repro.core.RERUN_MODES`).
    """
    if jobs > 1:
        from ..parallel import run_parallel
        return run_parallel(core, list(properties), jobs=jobs,
                            engine=engine, mgr=mgr, cache_dir=cache_dir,
                            rerun=rerun)
    session = CheckSession(core.circuit, mgr or BDDManager(),
                           engine=engine, cache=cache_dir, rerun=rerun)
    return session.run(properties)
