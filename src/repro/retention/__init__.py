"""The paper's core contribution: selective state retention designed and
verified with symbolic trajectory evaluation."""

from .analysis import (ARCHITECTURAL_GROUPS, MICROARCHITECTURAL_GROUPS,
                       RegisterClass, classify_registers, group_of_register,
                       minimal_retention_search, retention_report,
                       strip_retention)
from .memory_property import (MemoryIfrProperty, build_memory_ifr_property,
                              build_read_property, declare_memory_order)
from .power import (PolicyCost, RetentionCostModel, compare_policies,
                    generation_sweep)
from .properties import (CpuProperty, PropertyEnv, UNIT_COUNTS, build_suite,
                         make_env, run_suite, run_suite_session)
from .spec import (Schedule, clock_formula, property1_schedule,
                   property2_schedule, schedule_for_variant)

__all__ = [
    "Schedule", "clock_formula", "property1_schedule", "property2_schedule",
    "schedule_for_variant",
    "CpuProperty", "PropertyEnv", "UNIT_COUNTS", "build_suite", "make_env",
    "run_suite", "run_suite_session",
    "RegisterClass", "classify_registers", "group_of_register",
    "retention_report", "strip_retention", "minimal_retention_search",
    "ARCHITECTURAL_GROUPS", "MICROARCHITECTURAL_GROUPS",
    "PolicyCost", "RetentionCostModel", "compare_policies",
    "generation_sweep",
    "MemoryIfrProperty", "build_memory_ifr_property", "build_read_property",
    "declare_memory_order",
]
