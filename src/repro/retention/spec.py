"""Sleep/resume schedules and operating conditions (§III-A).

The paper specifies the mode-change protocol precisely:

    "The desired sequence of operations to put the CPU in sleep mode is
    as follows: 1. Stop the clock.  2. Assert NRET low (hold mode).
    3. Reset NRST is then asserted active low.  The resume mode is
    chronologically reverse … we usually give a unit delay in between
    switching these on and off."

A :class:`Schedule` packages the trajectory-formula fragments driving
``clock``/``NRET``/``NRST`` together with the named time points the
property generators key off: when the present state is asserted, when
the sleep reset fires, when the IFR reloads, and when the next
architectural state must appear.

Two flavours:

* :func:`property1_schedule` — Property I: "NRET is T from i to j"
  throughout, an uninterrupted clock; the retention registers must act
  like plain registers.
* :func:`property2_schedule` — Property II: clock and sleep and resume;
  the full mode excursion.  The ``reload`` knob distinguishes the
  selective designs (the non-retained IFR needs one reload edge before
  the next-state edge) from full retention (state is all there; the
  first resume edge executes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..ste import Formula, conj, from_to, is0, is1

__all__ = ["Schedule", "clock_formula", "property1_schedule",
           "property2_schedule", "schedule_for_variant"]


@dataclass(frozen=True)
class Schedule:
    """Time anatomy of one property run.

    ``t_present``: the present (arbitrary, symbolic) state is asserted
    here and must persist until consumed.  ``t_operate``: the phase
    whose combinational values the decisive clock edge commits (the
    paper's waveform "present state" band).  ``t_execute``: the step at
    which the expected next architectural state appears (the "next
    state" band of Fig. 3).  For sleep schedules, ``t_sleep_start`` /
    ``t_reset`` / ``t_resume`` / ``t_reload`` mark the mode excursion;
    ``hold_window`` is the interval over which retained state must be
    provably unchanged.
    """

    name: str
    depth: int
    base: Formula                 # clock + NRET + NRST waveforms
    t_present: int
    t_operate: int
    t_execute: int
    t_sleep_start: Optional[int] = None
    t_reset: Optional[int] = None
    t_resume: Optional[int] = None
    t_reload: Optional[int] = None

    @property
    def is_sleep(self) -> bool:
        return self.t_sleep_start is not None

    @property
    def hold_window(self) -> tuple:
        """(start, stop) over which retained state must hold its
        asserted value (up to, excluding, the execute step)."""
        return (self.t_present + 1, self.t_execute)


def clock_formula(levels: Sequence[int], node: str = "clock") -> Formula:
    """A clock waveform from per-phase levels, run-length encoded into
    ``is T/F from i to j`` conjuncts (exactly the §III-B idiom)."""
    parts: List[Formula] = []
    start = 0
    for t in range(1, len(levels) + 1):
        if t == len(levels) or levels[t] != levels[start]:
            atom = is1(node) if levels[start] else is0(node)
            parts.append(from_to(atom, start, t))
            start = t
    return conj(parts)


def property1_schedule(cycles: int = 1) -> Schedule:
    """Normal operation: NRET held high throughout (Property I).

    The clock starts high; each cycle is two phases (fall then rise):
    the IFR captures on the falling edge mid-cycle, the architectural
    registers commit on the next rising edge.  With ``cycles=1`` the
    present state is asserted at t=0 and the next state appears at t=2.
    """
    if cycles < 1:
        raise ValueError("need at least one cycle")
    depth = 2 * cycles + 1
    levels = [(t + 1) % 2 for t in range(depth)]  # T,F,T,F,...
    base = conj([
        clock_formula(levels),
        from_to(is1("NRET"), 0, depth),
        from_to(is1("NRST"), 0, depth),
    ])
    return Schedule(
        name=f"property1({cycles} cycle)",
        depth=depth,
        base=base,
        t_present=0,
        t_operate=1,
        t_execute=2 * cycles,
    )


def property2_schedule(reload: bool = True) -> Schedule:
    """The sleep/resume excursion (Property II).

    Phase anatomy (``reload=True``, the selective designs)::

        t:      0  1  2  3  4  5  6  7  8  9 10
        clock   T  F  F  F  F  F  F  F  T  F  T     (stop … restart)
        NRET    T  T  T  F  F  F  T  T  T  T  T     (hold during sleep)
        NRST    T  T  T  T  F  T  T  T  T  T  T     (reset pulse in sleep)
                ^present        ^resume ops
                                         ^t=8 bubble edge (safe)
                                            ^t=9 IFR reload (falling)
                                               ^t=10 executes: next state

    The ordering follows §III-A exactly: clock stops first (t=1), NRET
    drops next (t=3), NRST pulses last (t=4-5); resume is the reverse
    with unit delays — NRST back high (t=5), NRET high (t=6), clock
    restarts (t=8).  With ``reload=False`` (full retention) the t=8
    edge already executes, so the schedule ends at depth 9.
    """
    if reload:
        depth = 11
        clock_levels = [1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1]
        t_execute, t_reload, t_operate = 10, 9, 9
    else:
        depth = 9
        clock_levels = [1, 0, 0, 0, 0, 0, 0, 0, 1]
        t_execute, t_reload, t_operate = 8, None, 7
    base = conj([
        clock_formula(clock_levels),
        from_to(is1("NRET"), 0, 3),
        from_to(is0("NRET"), 3, 6),
        from_to(is1("NRET"), 6, depth),
        from_to(is1("NRST"), 0, 4),
        from_to(is0("NRST"), 4, 5),
        from_to(is1("NRST"), 5, depth),
    ])
    return Schedule(
        name="property2" + ("+reload" if reload else ""),
        depth=depth,
        base=base,
        t_present=0,
        t_operate=t_operate,
        t_execute=t_execute,
        t_sleep_start=3,
        t_reset=4,
        t_resume=8,
        t_reload=t_reload,
    )


def schedule_for_variant(variant: str, sleep: bool) -> Schedule:
    """The right schedule for a core variant.

    Selective designs pay one reload (stutter) cycle after resume; full
    retention resumes immediately — that one-cycle difference is the
    latency price of selective retention, and both are proven.
    """
    if not sleep:
        return property1_schedule()
    return property2_schedule(reload=(variant != "full-retention"))
