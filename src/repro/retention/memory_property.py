"""The paper's printed Property II instance: instruction memory + IFR.

§III-B builds one property explicitly — on a 256-word x 32-bit
instruction memory with a 6-bit IFR behind its read port, it

1. initialises the memory with symbolic words ``mem0 … mem255``,
2. writes symbolic data ``WD`` at symbolic address ``WA``,
3. reads at symbolic address ``RA`` and expects the read-after-write
   function ``RAW`` on the IFR,
4. runs the sleep sequence (clock stop, NRET low, NRST pulse), during
   which the IFR is cleared to zeros,
5. resumes and expects the IFR to re-acquire ``RAW`` from the retained
   memory on the first post-resume clock edge.

The consequent follows the paper verbatim: ``IFR is RAW from 3 to 6``,
``zeros from 6 to 9``, ``RAW from 9 to 10``.

Documented timing adaptations (DESIGN.md): our uniform setup-time
register semantics sample data one phase before the active edge, so
``ReadAdd`` is held for the whole run (it stands in for the retained
PC, which does hold) and ``MemRead``'s post-resume assertion starts at
t=8 rather than t=9 so the t=9 edge samples enabled read data.

Both the paper's *direct* memory encoding (one symbolic word per
location — linear cost) and the *symbolically indexed* encoding
(logarithmic cost, after Pandey et al.) are provided; E9 sweeps the two.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..bdd import BDDManager, BVec, interleave
from ..cpu import MemoryUnit
from ..ste import (CheckSession, Formula, STEResult, check, conj, from_to,
                   indexed_memory_antecedent, is0, is1, node_is, vec_is)
from ..ternary import TernaryValue
from .properties import vec_when

__all__ = ["MemoryIfrProperty", "build_memory_ifr_property",
           "declare_memory_order", "build_read_property"]


@dataclass
class MemoryIfrProperty:
    """The assembled property plus the symbols needed to interpret it."""

    antecedent: Formula
    consequent: Formula
    depth: int
    indexed: bool
    wa: BVec
    ra: BVec
    wd: BVec
    raw: BVec                 # the expected read-after-write word

    def check(self, unit: MemoryUnit, mgr: BDDManager,
              session: Optional[CheckSession] = None) -> STEResult:
        """Check against *unit*; pass a session to amortise compilation
        when sweeping several properties over the same memory."""
        if session is not None:
            if session.circuit is not unit.circuit:
                raise ValueError(
                    f"session was built for circuit "
                    f"{session.circuit.name!r}, not {unit.circuit.name!r}; "
                    f"a session checks only the circuit it compiled")
            if session.mgr is not mgr:
                raise ValueError(
                    "session uses a different BDDManager than the one "
                    "the property formulas were built on")
            encoding = "indexed" if self.indexed else "direct"
            return session.check(
                self.antecedent, self.consequent,
                name=f"memory_ifr_{unit.depth}x{unit.width}_{encoding}")
        return check(unit.circuit, self.antecedent, self.consequent, mgr)


def declare_memory_order(mgr: BDDManager, unit: MemoryUnit,
                         indexed: bool) -> None:
    """The variable-order discipline for memory reasoning: interleaved
    address vectors on top, data words next, per-cell words last."""
    order: List[str] = interleave(
        [f"WA[{i}]" for i in range(unit.addr_bits)],
        [f"RA[{i}]" for i in range(unit.addr_bits)],
        [f"J[{i}]" for i in range(unit.addr_bits)] if indexed else [],
    )
    order += interleave([f"WD[{i}]" for i in range(unit.width)],
                        [f"D[{i}]" for i in range(unit.width)]
                        if indexed else [])
    if not indexed:
        for w in range(unit.depth):
            order += [f"mem{w}[{b}]" for b in range(unit.width)]
    mgr.declare_all(order)


def build_memory_ifr_property(unit: MemoryUnit, mgr: BDDManager, *,
                              indexed: bool = False) -> MemoryIfrProperty:
    """Assemble the §III-B property for *unit* (any geometry)."""
    declare_memory_order(mgr, unit, indexed)
    wa = BVec.variables(mgr, "WA", unit.addr_bits)
    ra = BVec.variables(mgr, "RA", unit.addr_bits)
    wd = BVec.variables(mgr, "WD", unit.width)

    # -- the memory initialisation (IM) and the RAW function ------------
    if indexed:
        index = BVec.variables(mgr, "J", unit.addr_bits)
        data = BVec.variables(mgr, "D", unit.width)
        im = indexed_memory_antecedent(mgr, unit.cell_bus, unit.depth,
                                       index, data, 0, 1)
        old = data                       # content at RA, valid when RA==J
        raw_guard = ra.eq(index) | ra.eq(wa)
        raw = wd.ite(ra.eq(wa), old)
    else:
        parts = []
        words: List[BVec] = []
        for w in range(unit.depth):
            word = BVec.variables(mgr, f"mem{w}", unit.width)
            words.append(word)
            parts.append(vec_is(unit.cell_bus(w), word).from_to(0, 1))
        im = conj(parts)
        old = BVec.select(ra, words)
        raw_guard = mgr.true
        raw = wd.ite(ra.eq(wa), old)

    # -- §III-B antecedent ----------------------------------------------
    a = conj([
        im,
        vec_is(unit.circuit.bus("WriteAdd", unit.addr_bits), wa)
        .from_to(0, 1),
        vec_is(unit.circuit.bus("WriteData", unit.width), wd).from_to(0, 1),
        # "MemWrite is asserted between 0 and 1 and de-asserted afterwards"
        from_to(is1("MemWrite"), 0, 1), from_to(is0("MemWrite"), 1, 10),
        # ReadAdd stands in for the retained PC: held for the whole run.
        vec_is(unit.circuit.bus("ReadAdd", unit.addr_bits), ra)
        .from_to(0, 10),
        # MemRead: F 0-2, T 2-6, F 6-8, T 8-10 (one-phase setup shift).
        from_to(is0("MemRead"), 0, 2), from_to(is1("MemRead"), 2, 6),
        from_to(is0("MemRead"), 6, 8), from_to(is1("MemRead"), 8, 10),
        # "NRST is T from 0 to 6" then the in-sleep pulse.
        from_to(is1("NRST"), 0, 6), from_to(is0("NRST"), 6, 7),
        from_to(is1("NRST"), 7, 10),
        # NRET: T 0-5, F 5-8, T 8-10 (verbatim).
        from_to(is1("NRET"), 0, 5), from_to(is0("NRET"), 5, 8),
        from_to(is1("NRET"), 8, 10),
        # clock: F0-1 T1-2 F2-3 T3-4 (write edge t1, IFR edge t3),
        # stopped F 4-9, resume edge T 9-10 (verbatim).
        from_to(is0("clock"), 0, 1), from_to(is1("clock"), 1, 2),
        from_to(is0("clock"), 2, 3), from_to(is1("clock"), 3, 4),
        from_to(is0("clock"), 4, 9), from_to(is1("clock"), 9, 10),
    ])

    # -- §III-B consequent (verbatim) -------------------------------------
    ifr_expected = raw[unit.width - 6:unit.width]
    c = conj([
        vec_when(unit.ifr, ifr_expected, raw_guard, 3, 6),
        vec_is(unit.ifr, 0).from_to(6, 9),
        vec_when(unit.ifr, ifr_expected, raw_guard, 9, 10),
    ])
    return MemoryIfrProperty(
        antecedent=a, consequent=c, depth=10, indexed=indexed,
        wa=wa, ra=ra, wd=wd, raw=raw)


def build_read_property(unit: MemoryUnit, mgr: BDDManager, *,
                        indexed: bool) -> Tuple[Formula, Formula]:
    """The single-phase read-port check used by the E9 sweep: memory
    content asserted at t0, read data expected combinationally."""
    declare_memory_order(mgr, unit, indexed)
    ra = BVec.variables(mgr, "RA", unit.addr_bits)
    base = conj([
        vec_is(unit.circuit.bus("ReadAdd", unit.addr_bits), ra)
        .from_to(0, 1),
        from_to(is1("MemRead"), 0, 1),
        from_to(is0("MemWrite"), 0, 1),
        from_to(is0("clock"), 0, 1),
        from_to(is1("NRET"), 0, 1),
        from_to(is1("NRST"), 0, 1),
    ])
    read_bus = unit.read_data
    if indexed:
        index = BVec.variables(mgr, "J", unit.addr_bits)
        data = BVec.variables(mgr, "D", unit.width)
        a = conj([base, indexed_memory_antecedent(
            mgr, unit.cell_bus, unit.depth, index, data, 0, 1)])
        guard = ra.eq(index)
        c = vec_when(read_bus, data, guard, 0, 1)
    else:
        parts = []
        words = []
        for w in range(unit.depth):
            word = BVec.variables(mgr, f"mem{w}", unit.width)
            words.append(word)
            parts.append(vec_is(unit.cell_bus(w), word).from_to(0, 1))
        a = conj([base, conj(parts)])
        c = vec_is(read_bus, BVec.select(ra, words)).from_to(0, 1)
    return a, c
