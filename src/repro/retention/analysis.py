"""Retention-set analysis: which registers must be retained?

"One of the goals of our project has been to discover the minimal
architectural state of the CPU that needs to be retained in case of
selective state retention without compromising the correctness."

This module operationalises that goal on our netlists:

* `classify_registers` — splits a circuit's registers into
  architectural and micro-architectural groups using the core's
  naming discipline (PC / register bank / memories vs IFR and other
  plumbing), and reports the retention status of each group;
* `retention_report` — compares what *is* retained against what the
  classification says *must* be (the paper's finding: retain exactly
  the programmer-visible state);
* `minimal_retention_search` — the empirical loop the paper describes:
  for each candidate retention set, rebuild the core and re-check the
  Property II suite; the minimal passing set is the answer.  (Greedy
  over groups, since group members stand or fall together.)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..bdd import BDDManager
from ..netlist import Circuit

__all__ = ["RegisterClass", "classify_registers", "retention_report",
           "ARCHITECTURAL_GROUPS", "MICROARCHITECTURAL_GROUPS",
           "group_of_register", "strip_retention",
           "minimal_retention_search"]

#: Architectural (programmer-visible) register-name groups of the core.
ARCHITECTURAL_GROUPS = ("PC", "Reg", "IM_cell", "DM_cell")
#: Micro-architectural groups (the paper's finding: plain registers).
MICROARCHITECTURAL_GROUPS = ("IFR", "IM_ReadData")

_GROUP_RE = re.compile(r"^([A-Za-z_]+?)(\d*)\[\d+\]$")


def group_of_register(q: str) -> str:
    """The group name of a register output node.

    ``PC[3]`` -> ``PC``; ``Reg5[12]`` -> ``Reg``; ``IM_cell7[0]`` ->
    ``IM_cell``; unknown shapes map to themselves.
    """
    match = _GROUP_RE.match(q)
    if not match:
        return q
    stem = match.group(1)
    for known in ARCHITECTURAL_GROUPS + MICROARCHITECTURAL_GROUPS:
        if stem == known or stem.rstrip("_") == known:
            return known
        if stem.startswith(known) and stem[len(known):] in ("", "_"):
            return known
    # Strip a trailing instance index stem like "Reg12" -> "Reg".
    return stem.rstrip("_")


@dataclass
class RegisterClass:
    """One group of registers with its classification and status."""

    group: str
    architectural: bool
    count: int
    retained: int

    @property
    def fully_retained(self) -> bool:
        return self.retained == self.count

    @property
    def unretained(self) -> int:
        return self.count - self.retained


def classify_registers(circuit: Circuit) -> List[RegisterClass]:
    """Group the circuit's registers and classify each group."""
    counts: Dict[str, List[int]] = {}
    for q, reg in circuit.registers.items():
        group = group_of_register(q)
        slot = counts.setdefault(group, [0, 0])
        slot[0] += 1
        if reg.is_retention:
            slot[1] += 1
    out: List[RegisterClass] = []
    for group in sorted(counts):
        total, retained = counts[group]
        is_arch = any(group == g or group.startswith(g)
                      for g in ARCHITECTURAL_GROUPS)
        out.append(RegisterClass(group, is_arch, total, retained))
    return out


@dataclass
class RetentionReport:
    """Comparison of the implemented retention set against the
    architectural/micro-architectural classification."""

    classes: List[RegisterClass]
    missing_retention: List[str] = field(default_factory=list)
    excess_retention: List[str] = field(default_factory=list)

    @property
    def matches_selective_policy(self) -> bool:
        """True iff exactly the architectural state is retained."""
        return not self.missing_retention and not self.excess_retention

    @property
    def retained_bits(self) -> int:
        return sum(c.retained for c in self.classes)

    @property
    def total_bits(self) -> int:
        return sum(c.count for c in self.classes)

    @property
    def architectural_bits(self) -> int:
        return sum(c.count for c in self.classes if c.architectural)

    def summary(self) -> str:
        lines = [f"{'group':<14}{'class':<10}{'flops':>7}{'retained':>10}"]
        for c in self.classes:
            kind = "arch" if c.architectural else "uarch"
            lines.append(f"{c.group:<14}{kind:<10}{c.count:>7}{c.retained:>10}")
        lines.append(f"retained {self.retained_bits}/{self.total_bits} flops; "
                     f"selective policy match: "
                     f"{self.matches_selective_policy}")
        return "\n".join(lines)


def retention_report(circuit: Circuit) -> RetentionReport:
    """Audit the circuit against the selective-retention policy: every
    architectural flop retained, no micro-architectural flop retained."""
    classes = classify_registers(circuit)
    missing = [c.group for c in classes
               if c.architectural and not c.fully_retained]
    excess = [c.group for c in classes
              if not c.architectural and c.retained > 0]
    return RetentionReport(classes, missing, excess)


def strip_retention(circuit: Circuit, groups: Sequence[str]) -> Circuit:
    """A copy of *circuit* with the named register groups demoted from
    retention registers to plain (still resettable) registers — the
    mutation step of the minimal-retention search."""
    target = set(groups)
    out = Circuit(f"{circuit.name}_strip_{'_'.join(sorted(target))}")
    for node in circuit.inputs:
        out.add_input(node)
    for gate in circuit.gates.values():
        out.add_gate(gate.op, gate.out, gate.ins)
    for q, reg in circuit.registers.items():
        if reg.kind == "latch":
            out.add_latch(reg.q, reg.d, reg.clk)
            continue
        nret = reg.nret
        if nret is not None and group_of_register(q) in target:
            nret = None
        out.add_dff(reg.q, reg.d, reg.clk, enable=reg.enable,
                    nrst=reg.nrst, nret=nret, init=reg.init, edge=reg.edge)
    for node in circuit.outputs:
        out.set_output(node)
    return out


def minimal_retention_search(core, mgr: BDDManager,
                             witness_properties: Sequence[str] = (
                                 "fetch_pc_plus4", "writeback_load"),
                             ) -> Dict[str, bool]:
    """The empirical loop of §II-A: "discover the minimal architectural
    state of the CPU that needs to be retained … without compromising
    the correctness".

    For each architectural register group of *core* (which must be the
    fixed selective design), rebuild the core with that one group's
    retention stripped and re-check the witness Property II properties.
    Returns ``{group: required}`` — a group is *required* iff stripping
    it breaks some witness.  On the Fig. 4 core every architectural
    group is required and nothing else is retained, i.e. the selective
    set is exactly minimal.
    """
    from ..ste import check as ste_check
    from .properties import build_suite

    suite = {p.name: p for p in build_suite(core, mgr, sleep=True)}
    witnesses = [suite[name] for name in witness_properties]

    # Sanity: the unmodified design satisfies every witness.
    for prop in witnesses:
        baseline = prop.check(core, mgr)
        if not baseline.passed:
            raise ValueError(f"baseline witness {prop.name} fails; the "
                             f"search needs a verified starting design")

    verdict: Dict[str, bool] = {}
    arch_groups = [c.group for c in classify_registers(core.circuit)
                   if c.architectural and c.retained]
    for group in arch_groups:
        stripped = strip_retention(core.circuit, [group])
        required = False
        for prop in witnesses:
            result = ste_check(stripped, prop.antecedent, prop.consequent,
                               mgr)
            if not result.passed:
                required = True
                break
        verdict[group] = required
    return verdict
