"""Area and standby-leakage model for retention schemes (§IV).

The paper's quantitative claims:

* "retention registers may be 25-40 % larger area per flop";
* "partial state retention instead of full retention should result in
  lower standby power, and a reduction in high-fan-out buffers of
  retention controls";
* across 3/5/7-stage generations the architectural state is constant
  while micro-architectural state "roughly doubles every generation" —
  so retaining only the programmer's model keeps the retention cost
  flat as CPUs grow.

`RetentionCostModel` turns a state inventory (bit counts per register
group, from :mod:`repro.cpu.pipeline` or from a real netlist via
:func:`repro.retention.analysis.classify_registers`) into area and
leakage figures for the *full*, *selective* and *none* policies.  The
technology numbers are normalised (a plain flop = 1 area unit, 1
standby-leakage unit when power-gated state is lost = 0); what the
experiment reproduces is the scaling shape, not absolute µm².
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..cpu.pipeline import StateInventory

__all__ = ["RetentionCostModel", "PolicyCost", "compare_policies",
           "generation_sweep"]

POLICIES = ("none", "selective", "full")


@dataclass(frozen=True)
class RetentionCostModel:
    """Normalised per-flop technology parameters.

    ``retention_area_overhead`` — extra area of a retention flop over a
    plain one (paper: 0.25-0.40).  ``retention_leakage`` — standby
    leakage of the always-on retention latch, relative to a plain
    flop's *active-mode* leakage ("every retention register contributes
    to additional leakage power").  ``control_buffer_per_flops`` — one
    always-on NRET distribution buffer per this many retention flops
    (the "high-fan-out buffers of retention controls").
    """

    retention_area_overhead: float = 0.325   # midpoint of 25-40 %
    retention_leakage: float = 0.10
    buffer_leakage: float = 0.05
    control_buffer_per_flops: int = 64

    def __post_init__(self):
        if not 0 < self.retention_area_overhead < 1:
            raise ValueError("area overhead expected in (0, 1)")
        if self.control_buffer_per_flops < 1:
            raise ValueError("need at least one flop per control buffer")


@dataclass
class PolicyCost:
    """Cost of one retention policy on one design."""

    policy: str
    design: str
    total_flops: int
    retained_flops: int
    flop_area: float
    control_buffers: int
    standby_leakage: float
    resume_stutter_cycles: int

    @property
    def area_overhead_vs_plain(self) -> float:
        """Fractional area increase over an all-plain-flop design."""
        return self.flop_area / self.total_flops - 1.0


def _cost(model: RetentionCostModel, inventory: StateInventory,
          policy: str) -> PolicyCost:
    arch = inventory.architectural_bits
    uarch = inventory.microarchitectural_bits
    total = arch + uarch
    retained = {"none": 0, "selective": arch, "full": total}[policy]
    plain = total - retained
    area = plain + retained * (1.0 + model.retention_area_overhead)
    buffers = -(-retained // model.control_buffer_per_flops) if retained else 0
    leakage = (retained * model.retention_leakage
               + buffers * model.buffer_leakage)
    # Selective designs pay one reload cycle on resume (the IFR refill);
    # full retention resumes immediately; no retention must re-boot
    # (modelled as a large constant: reset + state re-acquisition).
    stutter = {"none": 10_000, "selective": 1, "full": 0}[policy]
    return PolicyCost(
        policy=policy,
        design=inventory.name,
        total_flops=total,
        retained_flops=retained,
        flop_area=area,
        control_buffers=buffers,
        standby_leakage=leakage,
        resume_stutter_cycles=stutter,
    )


def compare_policies(inventory: StateInventory,
                     model: RetentionCostModel = RetentionCostModel()
                     ) -> Dict[str, PolicyCost]:
    """Cost of all three policies on one design."""
    return {policy: _cost(model, inventory, policy) for policy in POLICIES}


def generation_sweep(inventories: Sequence[StateInventory],
                     model: RetentionCostModel = RetentionCostModel()
                     ) -> List[Dict[str, object]]:
    """The E11 table: per design generation, the architectural /
    micro-architectural split and the area & leakage of selective vs
    full retention (plus the savings of selective over full)."""
    rows: List[Dict[str, object]] = []
    for inventory in inventories:
        costs = compare_policies(inventory, model)
        full, selective = costs["full"], costs["selective"]
        rows.append({
            "design": inventory.name,
            "arch_bits": inventory.architectural_bits,
            "uarch_bits": inventory.microarchitectural_bits,
            "full_area": full.flop_area,
            "selective_area": selective.flop_area,
            "area_saving": 1.0 - selective.flop_area / full.flop_area,
            "full_leakage": full.standby_leakage,
            "selective_leakage": selective.standby_leakage,
            "leakage_saving":
                1.0 - (selective.standby_leakage / full.standby_leakage
                       if full.standby_leakage else 0.0),
            "retained_fraction":
                selective.retained_flops / selective.total_flops,
        })
    return rows
