"""repro — Selective State Retention Design using Symbolic Simulation.

A complete, from-scratch Python reproduction of Darbari, Al Hashimi,
Flynn & Biggs (DATE 2009): a BDD-based symbolic trajectory evaluation
(STE) stack, a gate-level 32-bit RISC core with emulated retention
registers, and the methodology that designs and *proves* selective
state retention — retain the programmer-visible architectural state,
leave the micro-architectural state volatile, and show with STE that
sleep/resume preserves correctness.

Package map (see DESIGN.md for the full inventory):

==================  ==================================================
``repro.bdd``       hash-consed ROBDDs + symbolic bit-vectors
``repro.ternary``   the dual-rail X/0/1/⊤ lattice domain
``repro.netlist``   gate-level circuits, the Fig. 1 retention register
``repro.blif``      BLIF parser/writer (the Quartus interchange)
``repro.fsm``       circuit -> executable ternary model (exlif2exe)
``repro.sat``       CNF/Tseitin compiler, CDCL solver, dual-rail
                    encoder, SAT/BMC property checker
``repro.core``      the checking core: engine registry, problem
                    fingerprints, persistent verdict cache, session
                    orchestrator
``repro.engine``    the shared EngineReport surface of both backends
``repro.ste``       trajectory formulas, the checker, counterexamples,
                    symbolic indexing, inference rules
``repro.cpu``       the Fig. 4 RISC core, ISA, assembler, golden model
``repro.retention`` sleep/resume schedules, the 26-property suite,
                    retention-set analysis, the area/power model
``repro.parallel``  multiprocess suite fan-out (cone-grouped workers,
                    merged session reports)
``repro.sim``       scalar simulation, waveforms (Fig. 3), VCD
``repro.harness``   experiment registry and result tables
==================  ==================================================
"""

__version__ = "1.0.0"

__all__ = ["bdd", "ternary", "netlist", "blif", "fsm", "sat", "core",
           "engine", "ste", "cpu", "retention", "parallel", "sim",
           "harness", "__version__"]
