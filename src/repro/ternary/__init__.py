"""Dual-rail ternary lattice domain for symbolic trajectory evaluation."""

from .value import (ONE, SCALAR_OF_RAILS, TOP, TernaryValue, X, ZERO,
                    from_bdd, from_bool)
from .vector import TernaryVector

__all__ = [
    "TernaryValue",
    "TernaryVector",
    "X",
    "ZERO",
    "ONE",
    "TOP",
    "from_bool",
    "from_bdd",
]
