"""The STE value lattice as dual-rail BDD pairs.

Symbolic trajectory evaluation augments the Boolean values 0 and 1 with
an *unknown* X below them in the information order (X ⊑ 0, X ⊑ 1), plus
an *overconstrained* top element ⊤ that arises when an antecedent demands
a node be both 0 and 1 at once.  A symbolic lattice value is encoded as a
pair of BDDs — the classic dual-rail encoding used by Forte:

    value = (h, l)     h: "may be 1",  l: "may be 0"

    X = (1, 1)    0 = (0, 1)    1 = (1, 0)    ⊤ = (0, 0)

Under a Boolean variable assignment φ the pair collapses to one of the
four scalars, so a single dual-rail value compactly represents a
*family* of scalar ternary values — that is precisely what lets one STE
run cover all instantiations of the symbolic state at once.

The information (trajectory) order and the monotone gate algebra are:

    join  (⊔, combine constraints):  (h1 & h2, l1 & l2)
    leq   (⊑):                       h2 → h1  and  l2 → l1 … see `leq`
    NOT   (h, l) = (l, h)
    AND   = pessimistic product (X & 0 = 0, X & 1 = X)
    MUX   monotone select — an X select merges the branches

Every operator here is monotone w.r.t. ⊑, which is the property the STE
fundamental theorem ("any binary value obtained with X's persists when
the X's are refined") rests on.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Tuple

from ..bdd import BDDError, BDDManager, Ref

__all__ = ["TernaryValue", "X", "ZERO", "ONE", "TOP", "from_bool",
           "from_bdd", "SCALAR_OF_RAILS"]

#: (h, l) rail truth values -> scalar character.  The single source of
#: truth for the dual-rail encoding, shared by the BDD engine
#: (:meth:`TernaryValue.scalar`) and the SAT engine
#: (:mod:`repro.sat.encode`, where an X-valued input is the
#: unconstrained pair of true rails).
SCALAR_OF_RAILS = {(True, True): "X", (True, False): "1",
                   (False, True): "0", (False, False): "T"}


class TernaryValue:
    """A dual-rail symbolic lattice value owned by a BDD manager."""

    __slots__ = ("mgr", "h", "l")

    def __init__(self, mgr: BDDManager, h: Ref, l: Ref):
        if h.mgr is not mgr or l.mgr is not mgr:
            raise BDDError("dual-rail components must share the manager")
        self.mgr = mgr
        self.h = h
        self.l = l

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def x(cls, mgr: BDDManager) -> "TernaryValue":
        return cls(mgr, mgr.true, mgr.true)

    @classmethod
    def zero(cls, mgr: BDDManager) -> "TernaryValue":
        return cls(mgr, mgr.false, mgr.true)

    @classmethod
    def one(cls, mgr: BDDManager) -> "TernaryValue":
        return cls(mgr, mgr.true, mgr.false)

    @classmethod
    def top(cls, mgr: BDDManager) -> "TernaryValue":
        return cls(mgr, mgr.false, mgr.false)

    @classmethod
    def of_bool(cls, mgr: BDDManager, value: bool) -> "TernaryValue":
        return cls.one(mgr) if value else cls.zero(mgr)

    @classmethod
    def of_bdd(cls, f: Ref) -> "TernaryValue":
        """Lift a Boolean function to the two-valued lattice element that
        is 1 exactly where *f* holds (never X)."""
        return cls(f.mgr, f, ~f)

    # ------------------------------------------------------------------
    # Lattice structure
    #
    # Everything below talks to the manager's int-level apply kernels
    # (`_apply_and` / `_apply_or` / `_not`) on raw node ids instead of
    # going through Ref operators: dual-rail stepping performs a handful
    # of BDD ops per gate per time step, and skipping the per-op Ref
    # wrapper plus manager check roughly halves the interpreter overhead
    # of the trajectory computation.
    # ------------------------------------------------------------------
    def join(self, other: "TernaryValue") -> "TernaryValue":
        """Least upper bound in the information order (⊔)."""
        self._check(other)
        mgr = self.mgr
        return TernaryValue(mgr,
                            Ref(mgr, mgr._apply_and(self.h.node, other.h.node)),
                            Ref(mgr, mgr._apply_and(self.l.node, other.l.node)))

    def meet(self, other: "TernaryValue") -> "TernaryValue":
        """Greatest lower bound (⊓): keeps only agreed information."""
        self._check(other)
        mgr = self.mgr
        return TernaryValue(mgr,
                            Ref(mgr, mgr._apply_or(self.h.node, other.h.node)),
                            Ref(mgr, mgr._apply_or(self.l.node, other.l.node)))

    def leq(self, other: "TernaryValue") -> Ref:
        """BDD of the condition under which ``self ⊑ other``.

        ⊑ holds iff every rail of *other* is contained in the same rail of
        *self* — other carries at least the information of self.
        """
        self._check(other)
        mgr = self.mgr
        return Ref(mgr, mgr._apply_and(
            mgr._apply_or(mgr._not(other.h.node), self.h.node),
            mgr._apply_or(mgr._not(other.l.node), self.l.node)))

    def is_consistent(self) -> Ref:
        """BDD of 'not overconstrained' (value != ⊤)."""
        mgr = self.mgr
        return Ref(mgr, mgr._apply_or(self.h.node, self.l.node))

    def is_defined(self) -> Ref:
        """BDD of 'carries a definite Boolean value' (0 or 1, not X/⊤)."""
        mgr = self.mgr
        return Ref(mgr, mgr._apply_xor(self.h.node, self.l.node))

    # ------------------------------------------------------------------
    # Monotone gate algebra
    # ------------------------------------------------------------------
    def __invert__(self) -> "TernaryValue":
        return TernaryValue(self.mgr, self.l, self.h)

    def __and__(self, other: "TernaryValue") -> "TernaryValue":
        self._check(other)
        mgr = self.mgr
        return TernaryValue(mgr,
                            Ref(mgr, mgr._apply_and(self.h.node, other.h.node)),
                            Ref(mgr, mgr._apply_or(self.l.node, other.l.node)))

    def __or__(self, other: "TernaryValue") -> "TernaryValue":
        self._check(other)
        mgr = self.mgr
        return TernaryValue(mgr,
                            Ref(mgr, mgr._apply_or(self.h.node, other.h.node)),
                            Ref(mgr, mgr._apply_and(self.l.node, other.l.node)))

    def __xor__(self, other: "TernaryValue") -> "TernaryValue":
        self._check(other)
        mgr = self.mgr
        and_ = mgr._apply_and
        or_ = mgr._apply_or
        sh, sl = self.h.node, self.l.node
        oh, ol = other.h.node, other.l.node
        return TernaryValue(mgr,
                            Ref(mgr, or_(and_(sh, ol), and_(sl, oh))),
                            Ref(mgr, or_(and_(sh, oh), and_(sl, ol))))

    def mux(self, then: "TernaryValue", else_: "TernaryValue") -> "TernaryValue":
        """Monotone ternary select with *self* as the control.

        control=1 -> then;  control=0 -> else_;  control=X -> the meet of
        the branches (X wherever they disagree) — the standard pessimistic
        but monotone multiplexer, which is exactly what latch and
        retention-cell models need.
        """
        self._check(then)
        self._check(else_)
        mgr = self.mgr
        and_ = mgr._apply_and
        or_ = mgr._apply_or
        ch, cl = self.h.node, self.l.node
        return TernaryValue(
            mgr,
            Ref(mgr, or_(and_(ch, then.h.node), and_(cl, else_.h.node))),
            Ref(mgr, or_(and_(ch, then.l.node), and_(cl, else_.l.node))))

    def when(self, guard: Ref) -> "TernaryValue":
        """Weaken to X outside *guard* — Defn 2's ``f when G`` clause."""
        mgr = self.mgr
        if guard.mgr is not mgr:
            raise BDDError("guard belongs to a different manager")
        outside = mgr._not(guard.node)
        return TernaryValue(mgr,
                            Ref(mgr, mgr._apply_or(self.h.node, outside)),
                            Ref(mgr, mgr._apply_or(self.l.node, outside)))

    # ------------------------------------------------------------------
    # Evaluation / inspection
    # ------------------------------------------------------------------
    def scalar(self, assignment: Mapping[str, bool]) -> str:
        """Collapse to one of '0', '1', 'X', 'T' under *assignment*."""
        h = self.mgr.eval(self.h, assignment)
        l = self.mgr.eval(self.l, assignment)
        return SCALAR_OF_RAILS[(h, l)]

    def const_scalar(self) -> Optional[str]:
        """The scalar if the value is assignment-independent, else None."""
        for name, h, l in (("X", True, True), ("1", True, False),
                           ("0", False, True), ("T", False, False)):
            if (self.h.is_true == h and self.h.is_const
                    and self.l.is_true == l and self.l.is_const):
                return name
        return None

    def equals(self, other: "TernaryValue") -> bool:
        """Canonical (BDD-level) equality of the two lattice values."""
        self._check(other)
        return self.h == other.h and self.l == other.l

    def _check(self, other: "TernaryValue") -> None:
        if other.mgr is not self.mgr:
            raise BDDError("TernaryValue operands use different managers")

    def __repr__(self) -> str:
        const = self.const_scalar()
        if const is not None:
            return f"TernaryValue({const})"
        return "TernaryValue(symbolic)"


def from_bool(mgr: BDDManager, value: bool) -> TernaryValue:
    """Convenience alias for :meth:`TernaryValue.of_bool`."""
    return TernaryValue.of_bool(mgr, value)


def from_bdd(f: Ref) -> TernaryValue:
    """Convenience alias for :meth:`TernaryValue.of_bdd`."""
    return TernaryValue.of_bdd(f)


def X(mgr: BDDManager) -> TernaryValue:
    return TernaryValue.x(mgr)


def ZERO(mgr: BDDManager) -> TernaryValue:
    return TernaryValue.zero(mgr)


def ONE(mgr: BDDManager) -> TernaryValue:
    return TernaryValue.one(mgr)


def TOP(mgr: BDDManager) -> TernaryValue:
    return TernaryValue.top(mgr)
