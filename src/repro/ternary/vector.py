"""Vectors of ternary lattice values.

The netlist simulator and the STE property generators move buses around
— instruction words, addresses, register contents.  :class:`TernaryVector`
is the bus-level counterpart of :class:`~repro.ternary.value.TernaryValue`
(little-endian, bit 0 first) with the helpers both sides need:

* lifting symbolic :class:`~repro.bdd.bvec.BVec` words or integer
  constants into the lattice,
* bus-level join / gate ops / muxes (all bitwise and monotone),
* collapsing back to scalar strings for waveforms and counterexamples.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Union

from ..bdd import BDDError, BDDManager, BVec, Ref
from .value import TernaryValue

__all__ = ["TernaryVector"]


class TernaryVector:
    """A fixed-width little-endian vector of ternary values."""

    __slots__ = ("mgr", "values")

    def __init__(self, mgr: BDDManager, values: Sequence[TernaryValue]):
        for v in values:
            if v.mgr is not mgr:
                raise BDDError("vector elements must share the manager")
        self.mgr = mgr
        self.values = list(values)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def xs(cls, mgr: BDDManager, width: int) -> "TernaryVector":
        return cls(mgr, [TernaryValue.x(mgr) for _ in range(width)])

    @classmethod
    def of_bvec(cls, vec: BVec) -> "TernaryVector":
        return cls(vec.mgr, [TernaryValue.of_bdd(b) for b in vec.bits])

    @classmethod
    def constant(cls, mgr: BDDManager, value: int, width: int) -> "TernaryVector":
        return cls.of_bvec(BVec.constant(mgr, value, width))

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    @property
    def width(self) -> int:
        return len(self.values)

    def __getitem__(self, idx: Union[int, slice]):
        if isinstance(idx, slice):
            return TernaryVector(self.mgr, self.values[idx])
        return self.values[idx]

    def __iter__(self):
        return iter(self.values)

    def _coerce(self, other: Union["TernaryVector", BVec, int]) -> "TernaryVector":
        if isinstance(other, int):
            return TernaryVector.constant(self.mgr, other, self.width)
        if isinstance(other, BVec):
            other = TernaryVector.of_bvec(other)
        if other.width != self.width:
            raise BDDError(f"width mismatch: {self.width} vs {other.width}")
        if other.mgr is not self.mgr:
            raise BDDError("vector operands use different managers")
        return other

    # ------------------------------------------------------------------
    # Lattice / logic, bitwise
    # ------------------------------------------------------------------
    def join(self, other: Union["TernaryVector", BVec, int]) -> "TernaryVector":
        other = self._coerce(other)
        return TernaryVector(self.mgr,
                             [a.join(b) for a, b in zip(self.values, other.values)])

    def __and__(self, other: Union["TernaryVector", BVec, int]) -> "TernaryVector":
        other = self._coerce(other)
        return TernaryVector(self.mgr,
                             [a & b for a, b in zip(self.values, other.values)])

    def __or__(self, other: Union["TernaryVector", BVec, int]) -> "TernaryVector":
        other = self._coerce(other)
        return TernaryVector(self.mgr,
                             [a | b for a, b in zip(self.values, other.values)])

    def __xor__(self, other: Union["TernaryVector", BVec, int]) -> "TernaryVector":
        other = self._coerce(other)
        return TernaryVector(self.mgr,
                             [a ^ b for a, b in zip(self.values, other.values)])

    def __invert__(self) -> "TernaryVector":
        return TernaryVector(self.mgr, [~a for a in self.values])

    def mux(self, control: TernaryValue,
            else_: Union["TernaryVector", BVec, int]) -> "TernaryVector":
        """Bus select: ``control ? self : else_`` (monotone per bit)."""
        else_ = self._coerce(else_)
        return TernaryVector(self.mgr,
                             [control.mux(a, b)
                              for a, b in zip(self.values, else_.values)])

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def scalar(self, assignment: Mapping[str, bool]) -> str:
        """MSB-first scalar string, e.g. ``'0X10'`` for a 4-bit bus."""
        return "".join(v.scalar(assignment) for v in reversed(self.values))

    def const_scalar(self) -> Optional[str]:
        chars: List[str] = []
        for v in reversed(self.values):
            c = v.const_scalar()
            if c is None:
                return None
            chars.append(c)
        return "".join(chars)

    def const_int(self) -> Optional[int]:
        """Integer value when every bit is the constant 0 or 1."""
        total = 0
        for i, v in enumerate(self.values):
            c = v.const_scalar()
            if c == "1":
                total |= 1 << i
            elif c != "0":
                return None
        return total

    def is_fully_defined(self) -> Ref:
        """BDD of 'every bit is a definite 0/1'."""
        return self.mgr.conj(v.is_defined() for v in self.values)

    def equals(self, other: Union["TernaryVector", BVec, int]) -> bool:
        other = self._coerce(other)
        return all(a.equals(b) for a, b in zip(self.values, other.values))

    def __repr__(self) -> str:
        const = self.const_scalar()
        if const is not None:
            return f"TernaryVector('{const}')"
        return f"TernaryVector(width={self.width}, symbolic)"
