"""The shared engine-report surface of the verification backends.

Two engines decide ``M ⊨ A ⇒ C``: the BDD/STE checker
(:class:`repro.ste.STEResult`) and the SAT/BMC checker
(:class:`repro.sat.BMCResult`); the third :data:`ENGINES` member,
``"portfolio"``, races them per property and returns whichever
engine's report answered first.  Their result objects are deliberately
shaped alike — :class:`EngineReport` names the common surface that
session aggregation, the CLI and the harness rely on, so callers can
hold either without caring which engine produced it:

* ``engine`` — ``"ste"`` or ``"bmc"``;
* ``passed`` / ``vacuous`` — the verdict (identical across engines on
  the same property, pinned by the differential tests);
* ``failures`` — per-(time, node) violation records (the BDD engine
  reports every violatable point, the SAT engine the points witnessed
  by its one model);
* ``depth`` / ``elapsed_seconds`` / ``summary()`` — reporting;
* counterexamples travel through :func:`repro.ste.extract`, which
  dispatches on the result type and always renders the same
  :class:`repro.ste.CounterExample` waveform shape.
"""

from __future__ import annotations

from typing import List, Protocol, runtime_checkable

__all__ = ["EngineReport", "EngineAborted", "ENGINES"]

#: The *built-in* engines.  ``"portfolio"`` races the other two per
#: property and takes the first verdict.  The authoritative, extensible
#: list lives in :func:`repro.core.registry.engine_names` — backends
#: register there as plugins and CheckSession dispatches through it;
#: this tuple stays as the frozen stock set for back-compatibility
#: (kept import-cycle-free: this module must not import repro.core).
ENGINES = ("ste", "bmc", "portfolio")


class EngineAborted(Exception):
    """Raised inside an engine when its cooperative abort callback
    fires — the portfolio racer cancels the losing engine with it.
    The engine's persistent state (BDD manager, incremental solver,
    learnt clauses) stays valid; only the in-flight check is
    abandoned."""


@runtime_checkable
class EngineReport(Protocol):
    """Structural type of one property-check result, either engine."""

    engine: str
    passed: bool
    vacuous: bool
    failures: List
    depth: int
    elapsed_seconds: float

    def summary(self) -> str: ...
